type 'a outcome = [ `Ok of 'a | `Failed of string ]

type progress = {
  p_done : int;
  p_total : int;
  p_elapsed_s : float;
  p_eta_s : float;
  p_utilization : float array;
}

type 'a report = {
  results : 'a outcome array;
  wall_s : float;
  busy_s : float array;
}

let default_domains () = max 1 (Domain.recommended_domain_count () - 1)
let now () = Unix.gettimeofday ()

(* Instrument lookups happen once per [run] (they take the registry
   mutex); the per-task path is Atomic-only and shared across domains. *)
type pool_obs = {
  po_jobs : Obs.Metrics.counter;
  po_failed : Obs.Metrics.counter;
  po_steals : Obs.Metrics.counter;
}

let make_obs metrics =
  {
    po_jobs = Obs.Metrics.counter metrics "exec_jobs_total";
    po_failed = Obs.Metrics.counter metrics "exec_jobs_failed_total";
    po_steals = Obs.Metrics.counter metrics "exec_steals_total";
  }

let run ?domains ?metrics ?on_progress tasks =
  let total = Array.length tasks in
  let obs = Option.map make_obs metrics in
  let domains =
    let d = match domains with Some d -> max 1 d | None -> default_domains () in
    (* never park idle domains on a short grid *)
    max 1 (min d (max 1 total))
  in
  let results : 'a outcome array = Array.make total (`Failed "never ran") in
  let next = Atomic.make 0 in
  let completed = Atomic.make 0 in
  let busy_s = Array.make domains 0. in
  let progress_mu = Mutex.create () in
  let t0 = now () in
  let notify () =
    match on_progress with
    | None -> ()
    | Some f ->
      Mutex.protect progress_mu (fun () ->
          let done_ = Atomic.get completed in
          let elapsed = now () -. t0 in
          let eta =
            if done_ = 0 then 0.
            else elapsed /. float_of_int done_ *. float_of_int (total - done_)
          in
          let util =
            Array.map
              (fun b -> if elapsed <= 0. then 0. else b /. elapsed)
              busy_s
          in
          f
            {
              p_done = done_;
              p_total = total;
              p_elapsed_s = elapsed;
              p_eta_s = eta;
              p_utilization = util;
            })
  in
  (* Each domain claims the next unclaimed task index; distinct indices
     mean distinct result slots, so slot writes never race. *)
  let worker d =
    let continue = ref true in
    while !continue do
      let i = Atomic.fetch_and_add next 1 in
      if i >= total then continue := false
      else begin
        let start = now () in
        let r =
          try `Ok (tasks.(i) ())
          with e -> `Failed (Printexc.to_string e)
        in
        busy_s.(d) <- busy_s.(d) +. (now () -. start);
        results.(i) <- r;
        (match obs with
        | None -> ()
        | Some o ->
          Obs.Metrics.incr o.po_jobs;
          (match r with
          | `Failed _ -> Obs.Metrics.incr o.po_failed
          | `Ok _ -> ());
          (* a claim by any domain other than the caller's is a steal
             off the shared counter *)
          if d > 0 then Obs.Metrics.incr o.po_steals);
        Atomic.incr completed;
        notify ()
      end
    done
  in
  if domains = 1 then worker 0
  else begin
    (* all workers (including the caller's own) run under
       [Par.with_worker], so nets created inside a task clamp to
       [domains = 1] — one whole simulation per domain composes; a
       sharded net inside a pool would oversubscribe the machine *)
    let spawned =
      Array.init (domains - 1) (fun d ->
          Domain.spawn (fun () -> Par.with_worker (fun () -> worker (d + 1))))
    in
    Par.with_worker (fun () -> worker 0);
    Array.iter Domain.join spawned
  end;
  { results; wall_s = now () -. t0; busy_s }
