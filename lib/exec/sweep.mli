(** The sweep harness: an ordered document of text and jobs.

    A sweep is a list of {!item}s — literal text (headers, column
    banners, shape notes) interleaved with {!Job.t}s (the grid cells).
    {!run} extracts the jobs, executes them on the {!Pool} (consulting
    the {!Cache} first when one is given), then renders the document in
    item order: text verbatim, each job's [payload.out] in its slot, and
    every job's [payload.rows] appended to the CSV artifact in the same
    order. Because rendering is by item order and job payloads are
    deterministic, stdout and the CSV are bit-identical for every
    [-j N] — parallelism changes only the wall-clock.

    A failed job renders as a single [FAILED <label>: <message>] line,
    contributes no rows, and is never cached; the rest of the sweep
    completes. Callers that must fail loudly inspect {!stats.failed} or
    the returned outcomes.

    [run] also emits the [BENCH_<name>.json] artifact (when
    [~bench_json] is given): the machine-readable perf trajectory of the
    sweep — wall-clock, job counts, cache hits, estimated speedup vs
    [-j 1] (sum of per-domain busy seconds over wall seconds), and a
    digest of the rendered document for cross-run byte-identity
    checks. *)

type item = Text of string | Job of Job.t

val text : ('a, Format.formatter, unit, item) format4 -> 'a

type stats = {
  name : string;
  jobs : int;
  ok : int;
  failed : int;
  cache_hits : int;
  cache_misses : int;  (** executed jobs (cold cells), cache or not *)
  domains : int;
  wall_s : float;
  cpu_s : float;  (** sum of in-task busy seconds across domains *)
  speedup_est : float;  (** [cpu_s /. wall_s] — speedup vs [-j 1] *)
  utilization : float array;  (** per-domain busy fraction *)
  rows_digest : string;
      (** hex digest of the fully rendered document — text items, every
          payload's [out] and [rows] (cache replays included), failure
          lines — so warm/cold and [-j N] byte-identity checks compare
          real content even for sweeps whose jobs emit no CSV rows *)
}

(** Default domain count for the [-j] flag:
    [Domain.recommended_domain_count () - 1], at least 1. *)
val default_jobs : unit -> int

(** [run ~name items] executes the sweep.

    @param jobs pool width; default {!default_jobs} ([-j 1] = inline)
    @param cache consult/populate this cache (absent = always compute)
    @param csv CSV artifact path (with [csv_header])
    @param bench_json path for the benchmark JSON artifact
    @param progress live progress meter on stderr (default on when the
      grid has more than one job)

    Returns the stats and the per-job outcomes (label, outcome) in grid
    order. *)
val run :
  name:string ->
  ?jobs:int ->
  ?cache:Cache.t ->
  ?csv:string ->
  ?csv_header:string ->
  ?bench_json:string ->
  ?progress:bool ->
  item list ->
  stats * (string * Job.payload Pool.outcome) list
