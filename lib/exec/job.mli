(** Experiment jobs: pure closures with content-addressed identity.

    A job is one cell of a sweep grid — it builds all of its own state
    (graph, [Congest.Net.t], seeded [Random.State.t]) inside its closure
    and returns a {!payload}: the formatted table text destined for
    stdout, the machine-readable artifact rows (CSV lines), and a bag of
    structured facts for post-run invariant checks. Because a job owns
    every piece of mutable state it touches, jobs are safe to execute on
    any domain of the {!Pool}; because results are strings, a job's
    output replays bit-identically from the {!Cache}.

    The {!key} is derived from the algorithm id, the (canonically
    sorted) parameters, and the seed — the complete input of a
    deterministic job — so it content-addresses the result: two jobs
    with equal keys must compute equal payloads. *)

type payload = {
  out : string;  (** table text, printed verbatim in job order *)
  rows : string list;  (** artifact (CSV) rows, appended in job order *)
  meta : (string * string) list;
      (** structured facts for invariant checks across the grid *)
}

type t

(** [make ~algo ?params ?seed run] declares a job. [algo] names the
    algorithm/experiment family; [params] are the grid coordinates;
    [seed] is the root of all randomness the closure may consult.
    [label] defaults to ["algo(k=v,...)#seed"]. *)
val make :
  algo:string ->
  ?params:(string * string) list ->
  ?seed:int ->
  ?label:string ->
  (unit -> payload) ->
  t

(** Content-addressed key: a hex digest of (algo, sorted params, seed).
    Stable across processes and OCaml versions. *)
val key : t -> string

val label : t -> string

(** Execute the closure (no caching, no containment — see {!Pool}). *)
val run : t -> payload

(** [payload out] builds a payload; [rows] and [meta] default to []. *)
val payload : ?rows:string list -> ?meta:(string * string) list -> string -> payload

(** Lookup in a payload's meta list. *)
val meta : payload -> string -> string option
