let write_atomic ~path content =
  let tmp = Printf.sprintf "%s.tmp.%d" path (Domain.self () :> int) in
  let oc = open_out_bin tmp in
  (try
     output_string oc content;
     close_out oc;
     Sys.rename tmp path
   with e ->
     close_out_noerr oc;
     (try Sys.remove tmp with Sys_error _ -> ());
     raise e)

let write ~path content = write_atomic ~path content

let with_file ?path f =
  match path with
  | None -> f (fun _ -> ())
  | Some path ->
    let b = Buffer.create 4096 in
    let result =
      f (fun line ->
          Buffer.add_string b line;
          Buffer.add_char b '\n')
    in
    (* buffered until success: an exception above leaves no artifact *)
    write_atomic ~path (Buffer.contents b);
    (* announce on stderr: stdout is the sweep's document (csv mode is
       redirected with `> results.csv`) *)
    Format.eprintf "csv artifact: %s@." path;
    result

let with_csv ?path ~header f =
  with_file ?path (fun emit ->
      (match path with Some _ -> emit header | None -> ());
      f emit)

(* ------------------------------------------------------------------ *)
(* JSON *)

type json =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of json list
  | Obj of (string * json) list

let escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let rec render b indent j =
  let pad n = String.make n ' ' in
  match j with
  | Null -> Buffer.add_string b "null"
  | Bool v -> Buffer.add_string b (string_of_bool v)
  | Int v -> Buffer.add_string b (string_of_int v)
  | Float v ->
    (* JSON has no nan/inf literals *)
    if not (Float.is_finite v) then Buffer.add_string b "null"
    else Buffer.add_string b (Printf.sprintf "%.6g" v)
  | String s ->
    Buffer.add_char b '"';
    Buffer.add_string b (escape s);
    Buffer.add_char b '"'
  | List [] -> Buffer.add_string b "[]"
  | List items ->
    Buffer.add_string b "[";
    List.iteri
      (fun i item ->
        if i > 0 then Buffer.add_string b ", ";
        render b indent item)
      items;
    Buffer.add_string b "]"
  | Obj [] -> Buffer.add_string b "{}"
  | Obj fields ->
    Buffer.add_string b "{\n";
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_string b ",\n";
        Buffer.add_string b (pad (indent + 2));
        Buffer.add_char b '"';
        Buffer.add_string b (escape k);
        Buffer.add_string b "\": ";
        render b (indent + 2) v)
      fields;
    Buffer.add_char b '\n';
    Buffer.add_string b (pad indent);
    Buffer.add_char b '}'

let json_to_string j =
  let b = Buffer.create 512 in
  render b 0 j;
  Buffer.add_char b '\n';
  Buffer.contents b

(* Trajectory mirror: BENCH_*.json run reports are gitignored (they
   are machine-local measurements), but the repo tracks one snapshot of
   each under bench/trajectory/ so perf history survives in git. Any
   sweep run from the repo root refreshes its snapshot as a side
   effect; from any other cwd the directory is absent and the mirror
   is skipped. *)
let trajectory_dir = Filename.concat "bench" "trajectory"

let mirror_trajectory ~path content =
  let base = Filename.basename path in
  if
    String.length base > 6
    && String.sub base 0 6 = "BENCH_"
    && Filename.check_suffix base ".json"
    && (try Sys.is_directory trajectory_dir with Sys_error _ -> false)
  then begin
    let snap = Filename.concat trajectory_dir base in
    write_atomic ~path:snap content;
    Format.eprintf "trajectory snapshot: %s@." snap
  end

let write_json ~path j =
  let content = json_to_string j in
  write_atomic ~path content;
  Format.eprintf "bench artifact: %s@." path;
  mirror_trajectory ~path content
