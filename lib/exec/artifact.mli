(** Atomic artifact writing (CSV and JSON).

    Every artifact is materialized in full in a temporary file next to
    its destination and renamed into place only on success, so a killed
    or crashing sweep never leaves a truncated [chaos.csv] or
    [BENCH_*.json] — the previous complete artifact (if any) survives
    instead. This is the single writer behind both the sweeps' CSV
    emission ([Csv_export.with_artifact] delegates here) and the
    engine's benchmark JSON. *)

(** [with_file ?path f] hands [f] an [emit] function appending one line
    per call. With [path = None], [emit] is a no-op (table-only runs).
    On normal return the file is atomically renamed into place and
    announced on stdout; if [f] raises, the temporary is removed and
    nothing is (over)written. *)
val with_file : ?path:string -> ((string -> unit) -> 'a) -> 'a

(** [with_csv ?path ~header f] is {!with_file} with [header] emitted
    first. *)
val with_csv : ?path:string -> header:string -> ((string -> unit) -> 'a) -> 'a

(** [write ~path content] writes [content] atomically (tmp + rename),
    without announcing. *)
val write : path:string -> string -> unit

(** {1 JSON}

    A minimal JSON tree — enough for the [BENCH_*.json] schema without
    adding a dependency. Serialization is deterministic: fields are
    emitted in the order given. *)

type json =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of json list
  | Obj of (string * json) list

val json_to_string : json -> string

(** [write_json ~path j] pretty-prints [j] and writes it atomically,
    announcing the artifact on stdout.

    [BENCH_*.json] run reports get one extra behavior: if a
    [bench/trajectory/] directory exists under the current working
    directory (i.e. the sweep runs from the repo root), the same
    content is also written to [bench/trajectory/BENCH_<sweep>.json] —
    the {e tracked} snapshot of an otherwise gitignored artifact, so
    the performance trajectory survives in git history (see README
    "Benchmarks"). *)
val write_json : path:string -> json -> unit
