module Graph = Graphs.Graph
module Net = Congest.Net

type outcome = {
  pass : bool;
  domination_ok : bool;
  connectivity_ok : bool;
  detection_round : int option;
}

let default_detection_rounds ~n =
  max 8 (4 * int_of_float (ceil (log (float_of_int (max 2 n)) /. log 2.)))

(* ------------------------------------------------------------------ *)
(* Distributed tester *)

let run_distributed ?(seed = 11) ?(live = fun _ -> true) net ~memberships
    ~classes ~detection_rounds =
  let n = Net.n net in
  let rng = Random.State.make [| seed; n; classes |] in
  (* a crashed node holds no memberships and owes no coverage *)
  let memberships r = if live r then memberships r else [] in
  (* 0. the standard O(D) preprocessing gives a diameter bound for the
        failure-flag floods *)
  let tree = Congest.Primitives.bfs_tree net ~root:0 in
  let d_bound = max 1 (2 * tree.Congest.Primitives.height) in
  (* 1. domination: every class must appear in every closed neighborhood *)
  let received = Multiflood.membership_sweep net ~memberships ~payload:(fun _ _ -> []) in
  let domination_ok = ref true in
  for r = 0 to n - 1 do
    if live r then begin
      let seen = Array.make classes false in
      List.iter (fun i -> seen.(i) <- true) (memberships r);
      List.iter (fun (_, i, _) -> seen.(i) <- true) received.(r);
      if not (Array.for_all (fun b -> b) seen) then domination_ok := false
    end
  done;
  if not !domination_ok then begin
    (* 'domination-failure' flood: Θ(D) rounds *)
    let _ =
      Congest.Primitives.flood_min net ~value:(fun r -> r) ~rounds:d_bound
    in
    {
      pass = false;
      domination_ok = false;
      connectivity_ok = true;
      detection_round = None;
    }
  end
  else begin
    (* 2. per-class component identification *)
    let cids =
      Multiflood.flood_min net ~memberships ~init:(fun r _ -> (r, r))
    in
    let cid r i =
      match Hashtbl.find_opt cids (r, i) with
      | Some (c, _) -> c
      | None -> -1
    in
    (* 3. status sweep: members announce (class, cid); everyone records
          the first id heard per class and watches for conflicts *)
    let heard = Array.init n (fun _ -> Hashtbl.create 8) in
    let detection = ref None in
    let detect_at round = if !detection = None then detection := Some round in
    let note r round i c =
      (* own membership id counts as heard *)
      match Hashtbl.find_opt heard.(r) i with
      | None -> Hashtbl.replace heard.(r) i c
      | Some c' -> if c' <> c then detect_at round
    in
    for r = 0 to n - 1 do
      List.iter (fun i -> note r 0 i (cid r i)) (memberships r)
    done;
    let received =
      Multiflood.membership_sweep net ~memberships ~payload:(fun r i ->
          [ cid r i ])
    in
    for r = 0 to n - 1 do
      if live r then
        List.iter
          (fun (_, i, payload) ->
            match payload with [ c ] -> note r 0 i c | _ -> ())
          received.(r)
    done;
    (* 4. random announcement rounds (Lemma E.1's detector-path process) *)
    for round = 1 to detection_rounds do
      let choice =
        Array.init n (fun r ->
            let ks =
              Hashtbl.fold (fun i c acc -> (i, c) :: acc) heard.(r) []
              |> List.sort compare
            in
            match ks with
            | [] -> None
            | _ -> Some (List.nth ks (Random.State.int rng (List.length ks))))
      in
      let inboxes =
        Net.broadcast_round net (fun r ->
            match choice.(r) with
            | Some (i, c) -> Some [| i; c |]
            | None -> None)
      in
      for r = 0 to n - 1 do
        if live r then
          List.iter (fun (_, m) -> note r round m.(0) m.(1)) inboxes.(r)
      done
    done;
    (* 5. failure-flag flood: Θ(D) rounds *)
    let flag r = if !detection <> None && r = 0 then 0 else 1 in
    ignore (Congest.Primitives.flood_min net ~value:flag ~rounds:d_bound);
    let connectivity_ok = !detection = None in
    {
      pass = connectivity_ok;
      domination_ok = true;
      connectivity_ok;
      detection_round = !detection;
    }
  end

(* ------------------------------------------------------------------ *)
(* Centralized tester: same process without the message-passing layer *)

let run_centralized ?(seed = 11) ?(live = fun _ -> true) g ~memberships
    ~classes ~detection_rounds =
  let n = Graph.n g in
  let rng = Random.State.make [| seed; n; classes |] in
  let memberships r = if live r then memberships r else [] in
  let member = Array.make_matrix classes n false in
  for r = 0 to n - 1 do
    List.iter (fun i -> member.(i).(r) <- true) (memberships r)
  done;
  (* domination *)
  let domination_ok = ref true in
  for r = 0 to n - 1 do
    if live r then
      for i = 0 to classes - 1 do
        let covered =
          member.(i).(r)
          || Array.exists (fun u -> member.(i).(u)) (Graph.neighbors g r)
        in
        if not covered then domination_ok := false
      done
  done;
  if not !domination_ok then
    {
      pass = false;
      domination_ok = false;
      connectivity_ok = true;
      detection_round = None;
    }
  else begin
    (* component ids per class via union-find *)
    let ufs = Array.init classes (fun _ -> Graphs.Union_find.create n) in
    Graph.iter_edges
      (fun u v ->
        for i = 0 to classes - 1 do
          if member.(i).(u) && member.(i).(v) then
            ignore (Graphs.Union_find.union ufs.(i) u v)
        done)
      g;
    let cid r i = Graphs.Union_find.find ufs.(i) r in
    let heard = Array.init n (fun _ -> Hashtbl.create 8) in
    let detection = ref None in
    let detect_at round = if !detection = None then detection := Some round in
    let note r round i c =
      match Hashtbl.find_opt heard.(r) i with
      | None -> Hashtbl.replace heard.(r) i c
      | Some c' -> if c' <> c then detect_at round
    in
    for r = 0 to n - 1 do
      if live r then begin
        List.iter (fun i -> note r 0 i (cid r i)) (memberships r);
        Array.iter
          (fun u -> List.iter (fun i -> note r 0 i (cid u i)) (memberships u))
          (Graph.neighbors g r)
      end
    done;
    for round = 1 to detection_rounds do
      let choice =
        Array.init n (fun r ->
            let ks =
              Hashtbl.fold (fun i c acc -> (i, c) :: acc) heard.(r) []
              |> List.sort compare
            in
            match ks with
            | [] -> None
            | _ -> Some (List.nth ks (Random.State.int rng (List.length ks))))
      in
      for r = 0 to n - 1 do
        if live r then
          Array.iter
            (fun u ->
              match choice.(u) with
              | Some (i, c) -> note r round i c
              | None -> ())
            (Graph.neighbors g r)
      done
    done;
    let connectivity_ok = !detection = None in
    {
      pass = connectivity_ok;
      domination_ok = true;
      connectivity_ok;
      detection_round = !detection;
    }
  end
