module Graph = Graphs.Graph
module Net = Congest.Net

type attempt = {
  attempt_seed : int;
  outcome : Tester.outcome;
}

type result = {
  packing : Cds_packing.t;
  attempts : attempt list;
  verified : bool;
  retries : int;
  rounds_charged : int;
}

let default_max_retries = 4
let default_backoff attempt = 1 lsl attempt

(* fresh, decorrelated seed per attempt *)
let reseed seed attempt = seed + (1_000_003 * attempt)

let memberships_of res =
  let per_real = Cds_packing.real_classes res in
  fun r -> per_real.(r)

let run_verified ?(seed = 42) ?(max_retries = default_max_retries) ?jumpstart g
    ~classes ~layers =
  let n = Graph.n g in
  let detection_rounds = Tester.default_detection_rounds ~n in
  let rec go attempt acc =
    let s = reseed seed attempt in
    let res = Cds_packing.run ~seed:s ?jumpstart g ~classes ~layers in
    let outcome =
      Tester.run_centralized ~seed:s g
        ~memberships:(memberships_of res)
        ~classes ~detection_rounds
    in
    let acc = { attempt_seed = s; outcome } :: acc in
    if outcome.Tester.pass || attempt >= max_retries then
      {
        packing = res;
        attempts = List.rev acc;
        verified = outcome.Tester.pass;
        retries = attempt;
        rounds_charged = 0;
      }
    else go (attempt + 1) acc
  in
  go 0 []

let pack_verified ?seed ?max_retries g ~k =
  run_verified ?seed ?max_retries g
    ~classes:(Cds_packing.default_classes ~k)
    ~layers:(Cds_packing.default_layers ~n:(Graph.n g))

let run_verified_distributed ?(seed = 42) ?(max_retries = default_max_retries)
    ?(backoff = default_backoff) ?jumpstart net ~classes ~layers =
  let n = Net.n net in
  let detection_rounds = Tester.default_detection_rounds ~n in
  let start = Net.checkpoint net in
  let rec go attempt acc =
    let s = reseed seed attempt in
    let res = Dist_packing.run ~seed:s ?jumpstart net ~classes ~layers in
    let outcome =
      Tester.run_distributed ~seed:s net
        ~memberships:(memberships_of res)
        ~classes ~detection_rounds
    in
    let acc = { attempt_seed = s; outcome } :: acc in
    if outcome.Tester.pass || attempt >= max_retries then
      {
        packing = res;
        attempts = List.rev acc;
        verified = outcome.Tester.pass;
        retries = attempt;
        rounds_charged = Net.rounds_since net start;
      }
    else begin
      (* round-charged backoff: the network idles before retrying, so
         the cost of flaky decompositions is visible on the clock *)
      Net.silent_rounds net (backoff attempt);
      go (attempt + 1) acc
    end
  in
  go 0 []

let pack_verified_distributed ?seed ?max_retries ?backoff net ~k =
  run_verified_distributed ?seed ?max_retries ?backoff net
    ~classes:(Cds_packing.default_classes ~k)
    ~layers:(Cds_packing.default_layers ~n:(Net.n net))
