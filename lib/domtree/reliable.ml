module Graph = Graphs.Graph
module Net = Congest.Net

type policy = [ `Retry | `Repair ]

type attempt = {
  attempt_seed : int;
  outcome : Tester.outcome;
  attempt_rounds : int;
  repaired : bool;
}

type result = {
  packing : Cds_packing.t;
  memberships : int list array;
  attempts : attempt list;
  verified : bool;
  retries : int;
  rounds_charged : int;
  budget_exhausted : bool;
  repair : Repair.t option;
  certificate : Certificate.t;
  degraded : bool;
  classes_retained : int;
}

let default_max_retries = 4
let default_backoff attempt = 1 lsl attempt

(* fresh, decorrelated seed per attempt *)
let reseed seed attempt = seed + (1_000_003 * attempt)

let memberships_of res =
  let per_real = Cds_packing.real_classes res in
  fun r -> per_real.(r)

(* Restrict [memfn] to [retained] classes, renumbered contiguously —
   the shape the Tester needs to re-verify a degraded packing. *)
let remap ~classes retained memfn =
  let idx = Array.make (max 1 classes) (-1) in
  List.iteri
    (fun j i -> if i >= 0 && i < classes then idx.(i) <- j)
    retained;
  fun r ->
    List.filter_map
      (fun i ->
        if i >= 0 && i < classes && idx.(i) >= 0 then Some idx.(i) else None)
      (memfn r)

let snapshot_memberships ~live n memfn =
  Array.init n (fun r -> if live r then List.sort_uniq compare (memfn r) else [])

let finalize ~live ~k g ~classes ~packing ~memberships ~attempts ~retries
    ~rounds_charged ~repair ~verified ?(budget_exhausted = false) () =
  let memfn r = memberships.(r) in
  let certificate = Certificate.build ~live g ~memberships:memfn ~classes ~k in
  {
    packing;
    memberships;
    attempts = List.rev attempts;
    verified;
    retries;
    rounds_charged;
    budget_exhausted;
    repair;
    certificate;
    degraded = Certificate.degraded certificate;
    classes_retained = Certificate.retained_count certificate;
  }

(* ------------------------------------------------------------------ *)
(* Centralized pipeline *)

let run_verified ?(seed = 42) ?(max_retries = default_max_retries) ?jumpstart
    ?(policy = (`Retry : policy)) ?(live = fun _ -> true) ?k g ~classes ~layers
    =
  let n = Graph.n g in
  let k = match k with Some k -> k | None -> 3 * classes in
  let detection_rounds = Tester.default_detection_rounds ~n in
  let finalize = finalize ~live ~k g ~classes in
  let rec go attempt acc =
    let s = reseed seed attempt in
    let res = Cds_packing.run ~seed:s ?jumpstart g ~classes ~layers in
    let memfn = memberships_of res in
    let outcome =
      Tester.run_centralized ~seed:s ~live g ~memberships:memfn ~classes
        ~detection_rounds
    in
    let stop ~verified ~repaired ~outcome ~memberships ~repair acc =
      let acc =
        { attempt_seed = s; outcome; attempt_rounds = 0; repaired } :: acc
      in
      finalize ~packing:res ~memberships ~attempts:acc ~retries:attempt
        ~rounds_charged:0 ~repair ~verified ()
    in
    if outcome.Tester.pass then
      stop ~verified:true ~repaired:false ~outcome
        ~memberships:(snapshot_memberships ~live n memfn)
        ~repair:None acc
    else begin
      let repair_win =
        match policy with
        | `Retry -> None
        | `Repair -> (
          let rep = Repair.run_centralized ~live g ~memberships:memfn ~classes in
          match rep.Repair.r_retained with
          | [] -> None
          | retained ->
            let memfn' =
              remap ~classes retained (fun r -> rep.Repair.r_memberships.(r))
            in
            let o =
              Tester.run_centralized ~seed:(s + 7919) ~live g
                ~memberships:memfn'
                ~classes:(List.length retained)
                ~detection_rounds
            in
            if o.Tester.pass then Some (rep, o) else None)
      in
      match repair_win with
      | Some (rep, o) ->
        stop ~verified:true ~repaired:true ~outcome:o
          ~memberships:rep.Repair.r_memberships ~repair:(Some rep) acc
      | None ->
        if attempt >= max_retries then
          stop ~verified:false
            ~repaired:(policy = `Repair)
            ~outcome
            ~memberships:(snapshot_memberships ~live n memfn)
            ~repair:None acc
        else
          go (attempt + 1)
            ({
               attempt_seed = s;
               outcome;
               attempt_rounds = 0;
               repaired = policy = `Repair;
             }
            :: acc)
    end
  in
  go 0 []

let pack_verified ?seed ?max_retries ?policy g ~k =
  run_verified ?seed ?max_retries ?policy ~k g
    ~classes:(Cds_packing.default_classes ~k)
    ~layers:(Cds_packing.default_layers ~n:(Graph.n g))

(* ------------------------------------------------------------------ *)
(* Distributed pipeline *)

let run_verified_distributed ?(seed = 42) ?(max_retries = default_max_retries)
    ?(backoff = default_backoff) ?jumpstart ?(policy = (`Retry : policy))
    ?round_budget ?k net ~classes ~layers =
  let n = Net.n net in
  let k = match k with Some k -> k | None -> 3 * classes in
  let live r = Net.node_alive net r in
  let g = Net.graph net in
  let detection_rounds = Tester.default_detection_rounds ~n in
  let start = Net.checkpoint net in
  (* rounds consumed inside repair regions that were later rolled back;
     the rollback erases them from the clock, honest accounting adds
     them back *)
  let discarded_total = ref 0 in
  let finalize = finalize ~live ~k g ~classes in
  let rec go attempt acc =
    let a_start = Net.checkpoint net in
    let s = reseed seed attempt in
    let res = Dist_packing.run ~seed:s ?jumpstart net ~classes ~layers in
    let memfn = memberships_of res in
    let outcome =
      Tester.run_distributed ~seed:s ~live net ~memberships:memfn ~classes
        ~detection_rounds
    in
    let stop ?budget_exhausted ~verified ~repaired ~outcome ~memberships
        ~repair ~discarded acc =
      let attempt_rounds = Net.rounds_since net a_start + discarded in
      let acc =
        { attempt_seed = s; outcome; attempt_rounds; repaired } :: acc
      in
      finalize ?budget_exhausted ~packing:res ~memberships ~attempts:acc
        ~retries:attempt
        ~rounds_charged:(Net.rounds_since net start + !discarded_total)
        ~repair ~verified ()
    in
    if outcome.Tester.pass then
      stop ~verified:true ~repaired:false ~outcome
        ~memberships:(snapshot_memberships ~live n memfn)
        ~repair:None ~discarded:0 acc
    else begin
      let repair_win, repair_discarded =
        match policy with
        | `Retry -> (None, 0)
        | `Repair ->
          (* barrier before the repair region: if the repaired packing
             still fails verification the region is poisoned — roll it
             back (network counters, digests, adversary state) and fall
             through to a reseeded retry, exactly as if the repair had
             never run; its rounds are still charged. *)
          let b = Net.barrier net in
          let rep = Repair.run_distributed ~live net ~memberships:memfn ~classes in
          let retest =
            match rep.Repair.r_retained with
            | [] -> None
            | retained ->
              let memfn' =
                remap ~classes retained (fun r -> rep.Repair.r_memberships.(r))
              in
              Some
                ( rep,
                  Tester.run_distributed ~seed:(s + 7919) ~live net
                    ~memberships:memfn'
                    ~classes:(List.length retained)
                    ~detection_rounds )
          in
          (match retest with
          | Some (rep, o) when o.Tester.pass -> (Some (rep, o), 0)
          | _ ->
            let discarded = Net.discarded_since net b in
            discarded_total := !discarded_total + discarded;
            Net.rollback net b;
            (None, discarded))
      in
      match repair_win with
      | Some (rep, o) ->
        stop ~verified:true ~repaired:true ~outcome:o
          ~memberships:rep.Repair.r_memberships ~repair:(Some rep) ~discarded:0
          acc
      | None ->
        (* a deadline-derived round budget truncates the retry ladder:
           once the rounds already charged (plus the backoff the next
           retry would cost) reach the budget, stop here and report the
           exhaustion instead of overrunning the caller's deadline *)
        let budget_hit =
          match round_budget with
          | None -> false
          | Some b ->
            Net.rounds_since net start + !discarded_total + backoff attempt
            >= b
        in
        if attempt >= max_retries || budget_hit then
          stop ~budget_exhausted:budget_hit ~verified:false
            ~repaired:(policy = `Repair)
            ~outcome
            ~memberships:(snapshot_memberships ~live n memfn)
            ~repair:None ~discarded:repair_discarded acc
        else begin
          let attempt_rounds = Net.rounds_since net a_start + repair_discarded in
          let acc =
            {
              attempt_seed = s;
              outcome;
              attempt_rounds;
              repaired = policy = `Repair;
            }
            :: acc
          in
          (* round-charged backoff: the network idles before retrying,
             so the cost of flaky decompositions is visible on the
             clock *)
          Net.silent_rounds net (backoff attempt);
          go (attempt + 1) acc
        end
    end
  in
  go 0 []

let pack_verified_distributed ?seed ?max_retries ?backoff ?policy ?round_budget
    net ~k =
  run_verified_distributed ?seed ?max_retries ?backoff ?policy ?round_budget ~k
    net
    ~classes:(Cds_packing.default_classes ~k)
    ~layers:(Cds_packing.default_layers ~n:(Net.n net))
