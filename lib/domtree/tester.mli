(** The Appendix E randomized CDS-partition tester (Lemma E.1).

    Given per-node class memberships (a partition of the virtual nodes,
    seen from the base graph as each real node holding O(log n)
    memberships), the tester checks that every class is a connected
    dominating set:

    - {b domination test} (exact): every node must see every class in
      its closed neighborhood;
    - {b connectivity test} (randomized): identify per-class component
      ids, then run Θ(log n) rounds in which each node announces the
      component id of a random class; two different ids for one class
      meeting at a node is a {e disconnect detection}. Lemma E.1: if any
      class is disconnected, detection happens w.h.p.

    A passing test is always sound for domination and sound w.h.p. for
    connectivity; a valid partition always passes. *)

type outcome = {
  pass : bool;
  domination_ok : bool;
  connectivity_ok : bool;
  detection_round : int option;
      (** first random round at which a disconnect was detected *)
}

(** [run_distributed ?seed ?live net ~memberships ~classes
    ~detection_rounds] executes the test over the CONGEST runtime
    (rounds are charged, including the final Θ(D) failure-flag flood).

    [live] (default: everyone) restricts the test to the surviving
    graph: a node with [live r = false] holds no memberships, owes no
    coverage (nobody must dominate the dead), and observes nothing —
    the semantics under which a {e degraded} packing can still be
    verified after crashes. Defaulting [live] from
    [Congest.Net.node_alive] tests against the installed adversary's
    crash set. *)
val run_distributed :
  ?seed:int ->
  ?live:(int -> bool) ->
  Congest.Net.t ->
  memberships:(int -> int list) ->
  classes:int ->
  detection_rounds:int ->
  outcome

(** [run_centralized ?seed ?live g ~memberships ~classes
    ~detection_rounds] is the O(m log n)-step centralized counterpart
    simulating the same random process, with the same [live] semantics. *)
val run_centralized :
  ?seed:int ->
  ?live:(int -> bool) ->
  Graphs.Graph.t ->
  memberships:(int -> int list) ->
  classes:int ->
  detection_rounds:int ->
  outcome

(** [default_detection_rounds ~n] = Θ(log n). *)
val default_detection_rounds : n:int -> int
