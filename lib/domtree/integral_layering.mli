(** Integral dominating-tree packing by random layering (§1.2,
    "Integral Tree Packings"; the technique of [CGK SODA'14, Thm 1.2]).

    Vertices are partitioned into L = Θ(log n) random layers; inside
    each layer we look for a connected dominating set of the {e whole}
    graph using only that layer's vertices (possible w.h.p. when the
    sampled connectivity κ is Ω(L·log n)). Layers are disjoint, so the
    resulting dominating trees are vertex-disjoint — an integral packing
    of size Ω(κ / log² n). *)

type result = {
  packing : Packing.t;  (** vertex-disjoint trees, each weight 1 *)
  layers : int;
  successes : int;  (** layers that yielded a CDS *)
}

(** [run ?seed g ~layers] attempts one CDS per layer. More layers means
    more potential trees but thinner layers (the κ/log² n trade-off). *)
val run : ?seed:int -> Graphs.Graph.t -> layers:int -> result

(** [default_layers ~n] = Θ(log n). *)
val default_layers : n:int -> int
