(** Fractional dominating-tree packings: the §2 object produced by the
    algorithms, plus its validity checker.

    A packing is a collection of dominating trees, each with a weight in
    [0,1], such that for every vertex the weights of the trees containing
    it sum to at most 1. Its size is the total weight. *)

type tree = {
  cls : int;  (** originating class id *)
  vertices : int array;  (** sorted distinct vertices *)
  edges : (int * int) list;  (** tree edges, (u,v) with u < v *)
}

type t = {
  graph : Graphs.Graph.t;
  trees : tree list;
  weights : float list;  (** same length/order as [trees] *)
}

(** Total weight Σ x_τ — the packing size κ. *)
val size : t -> float

(** Number of trees. *)
val count : t -> int

(** [node_load p v] is Σ of weights of trees containing [v]. *)
val node_load : t -> int -> float

(** [max_node_load p] over all vertices. *)
val max_node_load : t -> float

(** [max_multiplicity p] is the maximum number of trees sharing one
    vertex (the O(log n) bound of Theorems 1.1/1.2). *)
val max_multiplicity : t -> int

(** [tree_diameter p tree] is the diameter of the tree subgraph. *)
val tree_diameter : t -> tree -> int

(** [max_tree_diameter p] over all trees (0 when empty). *)
val max_tree_diameter : t -> int

type violation =
  | Not_a_tree of int  (** class id *)
  | Not_dominating of int
  | Edge_outside_graph of int
  | Overloaded_vertex of int * float  (** vertex, load *)
  | Bad_weight of int

val pp_violation : Format.formatter -> violation -> unit

(** [verify p] lists all violations; a valid fractional dominating-tree
    packing yields []. *)
val verify : t -> violation list

val is_valid : t -> bool

(** {1 Serialization}

    Text format: one [tree <cls> <weight>] header per tree, then a
    [v ...] vertex line and one [e u v] line per edge; [#] comments and
    blanks ignored. The graph itself is not stored — loading takes it as
    an argument and re-verification is the caller's business. *)

val save : string -> t -> unit
(** ["-"] = stdout. *)

val load : string -> graph:Graphs.Graph.t -> t
(** ["-"] = stdin. @raise Failure on malformed input. *)
