module Graph = Graphs.Graph
module Net = Congest.Net
module Union_find = Graphs.Union_find

let matching_stages ~n =
  max 4 (2 * int_of_float (ceil (log (float_of_int (max 2 n)) /. log 2.)))

(* Message tags for the single-round broadcasts of B.2 *)
let tag_connector = 0
let tag_one = 1

let run ?(seed = 42) ?jumpstart net ~classes ~layers =
  if classes < 1 then invalid_arg "Dist_packing.run: classes < 1";
  let jumpstart = match jumpstart with Some j -> j | None -> layers / 2 in
  if jumpstart < 1 || jumpstart > layers then
    invalid_arg "Dist_packing.run: jumpstart out of range";
  let g = Net.graph net in
  let n = Graph.n g in
  let vg = Virtual_graph.create g ~layers in
  let rng = Random.State.make [| seed; n; classes; 77 |] in
  let class_of = Array.make (Virtual_graph.count vg) (-1) in
  (* per-node local knowledge: the distinct classes of own virtual nodes *)
  let my_classes = Array.make n [] in
  let assign ~real ~layer ~vtype ~cls =
    class_of.(Virtual_graph.vid vg ~real ~layer ~vtype) <- cls;
    if not (List.mem cls my_classes.(real)) then
      my_classes.(real) <- cls :: my_classes.(real)
  in
  let random_class () = Random.State.int rng classes in
  (* jump-start *)
  for layer = 1 to jumpstart do
    for r = 0 to n - 1 do
      for vtype = 1 to 3 do
        assign ~real:r ~layer ~vtype ~cls:(random_class ())
      done
    done
  done;
  let memberships r = my_classes.(r) in
  (* instrumentation: excess components, computed post-hoc per layer from
     the same membership data (costs no rounds) *)
  let excess () =
    let ufs = Array.init classes (fun _ -> Union_find.create n) in
    let member = Array.make_matrix classes n false in
    for r = 0 to n - 1 do
      List.iter (fun i -> member.(i).(r) <- true) my_classes.(r)
    done;
    Graph.iter_edges
      (fun u v ->
        for i = 0 to classes - 1 do
          if member.(i).(u) && member.(i).(v) then
            ignore (Union_find.union ufs.(i) u v)
        done)
      g;
    let total = ref 0 in
    for i = 0 to classes - 1 do
      let roots = Hashtbl.create 16 in
      for r = 0 to n - 1 do
        if member.(i).(r) then
          Hashtbl.replace roots (Union_find.find ufs.(i) r) ()
      done;
      if Hashtbl.length roots >= 1 then
        total := !total + (Hashtbl.length roots - 1)
    done;
    !total
  in
  let stats_excess = ref [ (jumpstart, excess ()) ] in
  let stats_matched = ref [] in
  let stats_bridging = ref [] in
  let stages = matching_stages ~n in
  let proposal_range = max 64 (n * n) in

  for new_layer = jumpstart + 1 to layers do
    (* local random choices for type-1 and type-3 new nodes *)
    let class1 = Array.init n (fun _ -> random_class ()) in
    let class3 = Array.init n (fun _ -> random_class ()) in

    (* B.1: component identification of old nodes *)
    let cids = Multiflood.flood_min net ~memberships ~init:(fun r _ -> (r, r)) in
    let cid r i =
      match Hashtbl.find_opt cids (r, i) with Some (c, _) -> c | None -> -1
    in
    (* status sweep #1: members announce (class, cid) *)
    let sweep1 =
      Multiflood.membership_sweep net ~memberships ~payload:(fun r i ->
          [ cid r i ])
    in
    (* each node's view: class -> distinct cids in closed neighborhood *)
    let nbhd_cids r i =
      let acc = ref [] in
      if List.mem i my_classes.(r) then acc := [ cid r i ];
      List.iter
        (fun (_, j, payload) ->
          match payload with
          | [ c ] when j = i -> if not (List.mem c !acc) then acc := c :: !acc
          | _ -> ())
        sweep1.(r);
      !acc
    in

    (* B.2a: type-1 connector declarations (one round) *)
    let inboxes =
      Net.broadcast_round net (fun r ->
          let i = class1.(r) in
          if List.length (nbhd_cids r i) >= 2 then
            Some [| tag_connector; i |]
          else None)
    in
    (* members adjacent to a declaring type-1 node mark deactivation *)
    let deact_local = Hashtbl.create 64 in
    for r = 0 to n - 1 do
      List.iter
        (fun (_, m) ->
          if m.(0) = tag_connector then begin
            let i = m.(1) in
            if List.mem i my_classes.(r) then
              Hashtbl.replace deact_local (r, i) ()
          end)
        inboxes.(r)
    done;
    (* flood the deactivation flag through each component (flag 0 wins) *)
    let deact_table =
      Multiflood.flood_min net ~memberships ~init:(fun r i ->
          if Hashtbl.mem deact_local (r, i) then (0, r) else (1, r))
    in
    let deactivated r i =
      match Hashtbl.find_opt deact_table (r, i) with
      | Some (0, _) -> true
      | _ -> false
    in
    (* status sweep #2: members announce (class, cid, active?) *)
    let sweep2 =
      Multiflood.membership_sweep net ~memberships ~payload:(fun r i ->
          [ cid r i; (if deactivated r i then 0 else 1) ])
    in
    (* per node: class -> (cid, active) list seen in closed neighborhood *)
    let view r i =
      let acc = ref [] in
      if List.mem i my_classes.(r) then
        acc := [ (cid r i, not (deactivated r i)) ];
      List.iter
        (fun (_, j, payload) ->
          match payload with
          | [ c; a ] when j = i ->
            if not (List.mem_assoc c !acc) then acc := (c, a = 1) :: !acc
          | _ -> ())
        sweep2.(r);
      !acc
    in

    (* B.2b: type-3 messages (one round) *)
    let msg3_of r =
      let i = class3.(r) in
      match nbhd_cids r i with
      | [] -> None
      | [ c ] -> Some [| tag_one; i; c |]
      | _ :: _ :: _ -> Some [| tag_connector; i |]
    in
    let inboxes3 = Net.broadcast_round net (fun r -> msg3_of r) in
    (* type-2 witness check: does r (or a neighbor) carry a type-3 message
       of class i naming a component other than c (or "connector")? *)
    let witnesses r =
      (* collect all type-3 messages audible at r, own included *)
      let own = match msg3_of r with Some m -> [ (r, m) ] | None -> [] in
      own @ inboxes3.(r)
    in

    (* B.2c: type-2 neighbor lists *)
    let listv =
      Array.init n (fun r ->
          let audible = witnesses r in
          let witnessed i c =
            List.exists
              (fun (_, m) ->
                if m.(0) = tag_connector then m.(1) = i
                else m.(1) = i && m.(2) <> c)
              audible
          in
          (* candidate components: distinct (class, cid) active around r *)
          let acc = ref [] in
          for i = 0 to classes - 1 do
            List.iter
              (fun (c, active) ->
                if active && witnessed i c && not (List.mem (i, c) !acc) then
                  acc := (i, c) :: !acc)
              (view r i)
          done;
          !acc)
    in
    let bridging = Array.fold_left (fun a l -> a + List.length l) 0 listv in

    (* B.3: proposal-based maximal matching, Θ(log n) stages *)
    let class2 = Array.make n (-1) in
    let options = Array.map (fun l -> ref l) listv in
    (* members remember that their component got matched so it never
       accepts a second proposal in a later stage *)
    let matched_memberships = Hashtbl.create 64 in
    for _stage = 1 to stages do
      (* a. proposals *)
      let proposal =
        Array.init n (fun r ->
            if class2.(r) >= 0 then None
            else
              match !(options.(r)) with
              | [] -> None
              | opts ->
                let scored =
                  List.map
                    (fun (i, c) ->
                      (Random.State.int rng proposal_range, i, c))
                    opts
                in
                let best =
                  List.fold_left
                    (fun acc x -> if x > acc then x else acc)
                    (List.hd scored) (List.tl scored)
                in
                Some best)
      in
      let inboxes =
        Net.broadcast_round net (fun r ->
            match proposal.(r) with
            | Some (value, i, c) -> Some [| i; c; value; r |]
            | None -> None)
      in
      (* b. members of still-unmatched components record the best proposal
         addressed to their component *)
      let best_local = Hashtbl.create 64 in
      for r = 0 to n - 1 do
        List.iter
          (fun (_, m) ->
            let i = m.(0) and c = m.(1) and value = m.(2) and who = m.(3) in
            if
              List.mem i my_classes.(r) && cid r i = c
              && not (Hashtbl.mem matched_memberships (r, i))
            then begin
              let cur =
                match Hashtbl.find_opt best_local (r, i) with
                | Some p -> p
                | None -> (-1, -1)
              in
              if (value, who) > cur then
                Hashtbl.replace best_local (r, i) (value, who)
            end)
          inboxes.(r)
      done;
      (* c. component-wide maximum via min-flood on negated values *)
      let accepted =
        Multiflood.flood_min net ~memberships ~init:(fun r i ->
            match Hashtbl.find_opt best_local (r, i) with
            | Some (value, who) -> (-value, who)
            | None -> (1, -1))
      in
      let accepted_of r i =
        match Hashtbl.find_opt accepted (r, i) with
        | Some (neg, who) when neg <= 0 && who >= 0 -> Some (-neg, who)
        | _ -> None
      in
      (* d. members announce the accepted proposal and lock their
         component; every listener drops any component it hears got
         matched to somebody else (the paper's Listv update) *)
      let sweep3 =
        Multiflood.membership_sweep net ~memberships ~payload:(fun r i ->
            match accepted_of r i with
            | Some (value, who) -> [ cid r i; value; who ]
            | None -> [ cid r i; -1; -1 ])
      in
      for r = 0 to n - 1 do
        (* members lock their now-matched memberships *)
        List.iter
          (fun i ->
            if accepted_of r i <> None then
              Hashtbl.replace matched_memberships (r, i) ())
          my_classes.(r);
        List.iter
          (fun (_, j, payload) ->
            match payload with
            | [ c'; value'; who ] when who >= 0 ->
              (* did my own proposal win? *)
              (match proposal.(r) with
              | Some (value, i, c)
                when j = i && c' = c && who = r && value' = value ->
                class2.(r) <- i
              | _ -> ());
              (* either way, component (j, c') is taken now *)
              options.(r) :=
                List.filter
                  (fun (j2, c2) -> not (j2 = j && c2 = c'))
                  !(options.(r))
            | _ -> ())
          sweep3.(r)
      done
    done;
    let matched = Array.fold_left (fun a c -> if c >= 0 then a + 1 else a) 0 class2 in
    for r = 0 to n - 1 do
      if class2.(r) < 0 then class2.(r) <- random_class ()
    done;

    (* commit the layer *)
    for r = 0 to n - 1 do
      assign ~real:r ~layer:new_layer ~vtype:1 ~cls:class1.(r);
      assign ~real:r ~layer:new_layer ~vtype:2 ~cls:class2.(r);
      assign ~real:r ~layer:new_layer ~vtype:3 ~cls:class3.(r)
    done;
    stats_excess := (new_layer, excess ()) :: !stats_excess;
    stats_matched := (new_layer, matched) :: !stats_matched;
    stats_bridging := (new_layer, bridging) :: !stats_bridging
  done;

  (* harvest (post-hoc verification, free) *)
  let member = Array.make_matrix classes n false in
  for r = 0 to n - 1 do
    List.iter (fun i -> member.(i).(r) <- true) my_classes.(r)
  done;
  let members =
    Array.init classes (fun i ->
        let acc = ref [] in
        for r = n - 1 downto 0 do
          if member.(i).(r) then acc := r :: !acc
        done;
        Array.of_list !acc)
  in
  let connected =
    Array.init classes (fun i ->
        let ms = members.(i) in
        Array.length ms > 0
        &&
        let in_set v = member.(i).(v) in
        let dist = Graphs.Traversal.distances_within g in_set ms.(0) in
        Array.for_all (fun r -> dist.(r) >= 0) ms)
  in
  let dominating =
    Array.init classes (fun i ->
        Graphs.Domination.is_dominating g (fun v -> member.(i).(v)))
  in
  {
    Cds_packing.vg;
    classes;
    class_of;
    members;
    connected;
    dominating;
    stats =
      {
        Cds_packing.excess_after_layer = List.rev !stats_excess;
        matched_per_layer = List.rev !stats_matched;
        bridging_edges_per_layer = List.rev !stats_bridging;
      };
  }

let extract_trees net (result : Cds_packing.t) =
  let g = Net.graph net in
  let n = Graph.n g in
  let valid = Cds_packing.valid_classes result in
  let member = Array.make_matrix result.Cds_packing.classes n false in
  Array.iteri
    (fun i ms -> Array.iter (fun r -> member.(i).(r) <- true) ms)
    result.Cds_packing.members;
  let trees =
    List.map
      (fun cls ->
        let active v = member.(cls).(v) in
        let edges =
          Congest.Dist_mst.minimum_spanning_forest_on net ~active
            ~edge_active:(fun u v -> active u && active v)
            ~weight:(fun _ _ -> 0)
        in
        {
          Packing.cls;
          vertices = result.Cds_packing.members.(cls);
          edges;
        })
      valid
  in
  let mult =
    let counts = Array.make n 0 in
    List.iter
      (fun tr ->
        Array.iter (fun v -> counts.(v) <- counts.(v) + 1) tr.Packing.vertices)
      trees;
    Array.fold_left max 1 counts
  in
  let w = 1. /. float_of_int mult in
  { Packing.graph = g; trees; weights = List.map (fun _ -> w) trees }

let pack ?seed net ~k =
  let n = Net.n net in
  run ?seed net
    ~classes:(Cds_packing.default_classes ~k)
    ~layers:(Cds_packing.default_layers ~n)
