(** CDS → dominating trees (§3.1, last step): strip each valid class to a
    spanning tree of its induced subgraph and weight the collection into
    a fractional dominating-tree packing. *)

(** [of_cds_packing result] keeps the classes that are genuine CDSs,
    spans each with a tree (the paper's 0/1-weight MST step; we span each
    class with a BFS tree of its induced subgraph, which is also a
    0-weight-only spanning tree), and assigns every tree the uniform
    weight 1/μ where μ is the maximum number of classes sharing a
    vertex. The result is always a valid fractional packing. *)
val of_cds_packing : Cds_packing.t -> Packing.t

(** [fractional_size result] is the packing size [of_cds_packing] will
    achieve: (number of valid classes) / μ. *)
val fractional_size : Cds_packing.t -> float

(** [integral_subpacking p] greedily selects pairwise vertex-disjoint
    trees from a fractional packing (first-fit) — the simple route to an
    integral dominating-tree packing used for E12. *)
val integral_subpacking : Packing.t -> Packing.t
