(** Incremental repair of a broken CDS packing.

    When faults crash nodes mid-run — or the Appendix E {!Tester} flags
    classes as no longer connected dominating sets — the all-or-nothing
    alternative ([Domtree.Reliable]'s reseed-and-retry) throws away
    every healthy class and pays a full re-decomposition. This module
    repairs {e only} the broken classes, locally:

    + {b extinction}: a class with no surviving member has no fragments
      to splice and is dropped up front;
    + {b domination fix}: a live node with no live member of class [i]
      in its closed neighborhood is {e orphaned}; it reassigns itself
      into [i] (a radius-0 decision off one membership sweep), after
      which every surviving class dominates the live graph;
    + {b splice loop}: a dominating class's fragments are pairwise
      within distance 3 through live vertices, so bridges are purely
      local: a vertex adjacent to two fragments joins (length-2
      bridge), and two adjacent vertices that each relay a different
      nearest-fragment id both join (length-3 bridge). All bridges fire
      simultaneously, so fragments merge Borůvka-style — the loop runs
      at most ⌈lg n⌉ + 2 iterations;
    + {b graceful degradation}: a class still fragmented at the cap
      (e.g. its fragments live in different components of a
      disconnected live graph) is dropped, and the survivors stand —
      certified by {!Certificate} rather than discarded.

    The distributed variant drives the same decision rules with actual
    CONGEST traffic — component ids by per-class {!Multiflood.flood_min},
    fragment ids and relays by membership sweeps — so its rounds are
    charged to the clock ({e only} the repair's rounds, the point of the
    exercise), it runs unmodified under an installed fault adversary,
    and it stays replay-deterministic. Repaired classes are no longer
    vertex-disjoint in general (connectors may serve several classes);
    the certificate's [c_max_load] reports the overlap honestly. *)

type class_status =
  | Healthy  (** untouched: was already connected + dominating *)
  | Repaired  (** fixed by orphan reassignment and/or splicing *)
  | Dropped  (** unfixable: extinct, or still fragmented at the cap *)

type t = {
  r_memberships : int list array;
      (** per-real-node class lists after repair (sorted, unique; empty
          for dead nodes; dropped classes removed) *)
  r_status : class_status array;  (** per original class *)
  r_retained : int list;  (** Healthy + Repaired class ids, ascending *)
  r_dropped : int list;  (** Dropped class ids, ascending *)
  r_orphans : int;  (** vertices self-assigned to restore domination *)
  r_splices : int;  (** vertex-class pairs added as fragment bridges *)
  r_rounds : int;  (** CONGEST rounds charged; 0 for centralized *)
}

val pp : Format.formatter -> t -> unit

(** [run_centralized ?live g ~memberships ~classes] repairs the packing
    against the live subgraph ([live] defaults to everyone). Membership
    lists of dead nodes are discarded. *)
val run_centralized :
  ?live:(int -> bool) ->
  Graphs.Graph.t ->
  memberships:(int -> int list) ->
  classes:int ->
  t

(** [run_distributed ?live net ~memberships ~classes] is the
    message-driven variant; [live] defaults to
    {!Congest.Net.node_alive} (the installed adversary's crash set).
    Rounds for the sweeps, per-class floods, and the final
    dropped-class dissemination flood are charged to [net]'s clock. *)
val run_distributed :
  ?live:(int -> bool) ->
  Congest.Net.t ->
  memberships:(int -> int list) ->
  classes:int ->
  t
