(** Vertex-connectivity approximation (Corollary 1.7): run the
    dominating-tree packing with exponentially decreasing guesses
    n/2^j of k and accept the first guess whose packing passes the
    Appendix E tester. The accepted class count t = Θ(guess) is an
    O(log n)-approximation of k:

    - at guesses <= k the packing succeeds w.h.p., so the accepted guess
      is >= k/2, giving t = Ω(k);
    - t classes of vertex-disjoint (virtual) CDSs with real-level
      multiplicity O(log n) force k >= t / O(log n). *)

type result = {
  estimate : int;  (** k̂ — the accepted number of classes *)
  accepted_guess : int;  (** the k-guess that passed *)
  attempts : int;  (** how many guesses were tried *)
  packing : Packing.t;  (** the dominating-tree packing of the accepted run *)
}

(** [centralized ?seed g] — O~(m)-style implementation on a connected
    graph with at least 2 vertices. *)
val centralized : ?seed:int -> Graphs.Graph.t -> result

(** [distributed ?seed net] — same loop over the CONGEST runtime with
    the distributed packing and distributed tester; rounds accumulate on
    [net]. *)
val distributed : ?seed:int -> Congest.Net.t -> result

(** [approximation_ratio ~truth result] is max(k/k̂, k̂/k), the quantity
    Corollary 1.7 bounds by O(log n). *)
val approximation_ratio : truth:int -> result -> float
