module Graph = Graphs.Graph

type t = {
  base : Graph.t;
  layers : int;
}

let create g ~layers =
  if layers < 2 || layers mod 2 <> 0 then
    invalid_arg "Virtual_graph.create: layers must be even and >= 2";
  { base = g; layers }

let base vg = vg.base
let layers vg = vg.layers
let count vg = 3 * vg.layers * Graph.n vg.base

(* id layout: ((real * layers) + (layer - 1)) * 3 + (vtype - 1) *)
let vid vg ~real ~layer ~vtype =
  if layer < 1 || layer > vg.layers then invalid_arg "Virtual_graph.vid: layer";
  if vtype < 1 || vtype > 3 then invalid_arg "Virtual_graph.vid: type";
  if real < 0 || real >= Graph.n vg.base then
    invalid_arg "Virtual_graph.vid: real";
  (((real * vg.layers) + (layer - 1)) * 3) + (vtype - 1)

let real_of vg id = id / (3 * vg.layers)
let layer_of vg id = (id / 3) mod vg.layers + 1
let type_of _vg id = (id mod 3) + 1

let adjacent vg a b =
  let ra = real_of vg a and rb = real_of vg b in
  (ra = rb && a <> b) || Graph.mem_edge vg.base ra rb

let meta_round_cost vg = 3 * vg.layers
