(** The bridging graph (§3.1 step (2), Fig. 1), as a standalone
    inspectable structure.

    Given a snapshot of the old nodes' class memberships and the random
    class choices of the new layer's type-1 and type-3 nodes, this
    module materializes the bipartite graph between {e old components}
    (one side) and {e type-2 new nodes} (other side), applying the
    paper's three adjacency conditions:

    (a) the type-2 node has a neighbor in the component;
    (b) the component is not already connected to another component of
        its class by a type-1 new node that joined the class
        (deactivation);
    (c) the type-2 node has a type-3 new neighbor of the class
        witnessing a different component.

    The packing algorithms implement the same rules incrementally; this
    module recomputes them from scratch, serving both as the Fig. 1
    realization and as an independent cross-check in the tests. *)

type component = {
  cls : int;
  id : int;  (** canonical id: minimum member vertex *)
  members : int list;
  active : bool;  (** false once deactivated by a type-1 connector *)
}

type t = {
  components : component list;
  edges : (int * (int * int)) list;
      (** (type-2 real node, (class, component id)) adjacency *)
}

(** [build g ~members ~class1 ~class3] — [members i v] says whether real
    vertex [v] is an old member of class [i] ([0 <= i < classes]);
    [class1]/[class3] give the new layer's random type-1/type-3 class
    choices per real vertex. *)
val build :
  Graphs.Graph.t ->
  classes:int ->
  members:(int -> int -> bool) ->
  class1:int array ->
  class3:int array ->
  t

(** [degree_of_component t ~cls ~id] — how many type-2 nodes can serve
    this component. *)
val degree_of_component : t -> cls:int -> id:int -> int

(** [greedy_matching t] — a maximal matching, for illustration; returns
    (type-2 node, (class, component id)) pairs. *)
val greedy_matching : t -> (int * (int * int)) list

val pp : Format.formatter -> t -> unit
