module Graph = Graphs.Graph

type tree = {
  cls : int;
  vertices : int array;
  edges : (int * int) list;
}

type t = {
  graph : Graph.t;
  trees : tree list;
  weights : float list;
}

let size p = List.fold_left ( +. ) 0. p.weights
let count p = List.length p.trees

let node_load p v =
  List.fold_left2
    (fun acc tree w ->
      if Array.exists (fun x -> x = v) tree.vertices then acc +. w else acc)
    0. p.trees p.weights

let max_node_load p =
  let best = ref 0. in
  for v = 0 to Graph.n p.graph - 1 do
    let l = node_load p v in
    if l > !best then best := l
  done;
  !best

let max_multiplicity p =
  let n = Graph.n p.graph in
  let counts = Array.make n 0 in
  List.iter
    (fun tree ->
      Array.iter (fun v -> counts.(v) <- counts.(v) + 1) tree.vertices)
    p.trees;
  Array.fold_left max 0 counts

(* BFS inside the tree's own edge set. *)
let tree_diameter _p tree =
  let vs = tree.vertices in
  if Array.length vs <= 1 then 0
  else begin
    let index = Hashtbl.create (Array.length vs) in
    Array.iteri (fun i v -> Hashtbl.replace index v i) vs;
    let adj = Array.make (Array.length vs) [] in
    List.iter
      (fun (u, v) ->
        let iu = Hashtbl.find index u and iv = Hashtbl.find index v in
        adj.(iu) <- iv :: adj.(iu);
        adj.(iv) <- iu :: adj.(iv))
      tree.edges;
    let bfs src =
      let dist = Array.make (Array.length vs) (-1) in
      let q = Queue.create () in
      dist.(src) <- 0;
      Queue.add src q;
      let far = ref src in
      while not (Queue.is_empty q) do
        let u = Queue.pop q in
        if dist.(u) > dist.(!far) then far := u;
        List.iter
          (fun v ->
            if dist.(v) < 0 then begin
              dist.(v) <- dist.(u) + 1;
              Queue.add v q
            end)
          adj.(u)
      done;
      (!far, dist.(!far))
    in
    (* double sweep is exact on trees *)
    let far, _ = bfs 0 in
    let _, d = bfs far in
    d
  end

let max_tree_diameter p =
  List.fold_left (fun acc tree -> max acc (tree_diameter p tree)) 0 p.trees

type violation =
  | Not_a_tree of int
  | Not_dominating of int
  | Edge_outside_graph of int
  | Overloaded_vertex of int * float
  | Bad_weight of int

let pp_violation ppf = function
  | Not_a_tree c -> Format.fprintf ppf "class %d: not a tree" c
  | Not_dominating c -> Format.fprintf ppf "class %d: not dominating" c
  | Edge_outside_graph c -> Format.fprintf ppf "class %d: edge outside graph" c
  | Overloaded_vertex (v, l) ->
    Format.fprintf ppf "vertex %d: load %.3f > 1" v l
  | Bad_weight c -> Format.fprintf ppf "class %d: weight outside [0,1]" c

let verify p =
  let g = p.graph in
  let violations = ref [] in
  let push v = violations := v :: !violations in
  List.iter2
    (fun tree w ->
      if w < 0. || w > 1. then push (Bad_weight tree.cls);
      let vs = Array.to_list tree.vertices in
      if
        not
          (List.for_all (fun (u, v) -> Graph.mem_edge g u v) tree.edges)
      then push (Edge_outside_graph tree.cls);
      let member v = Array.exists (fun x -> x = v) tree.vertices in
      (* tree structure: |E| = |V| - 1, connected, within vertex set *)
      let n_vs = List.length vs in
      let tree_ok =
        List.length tree.edges = n_vs - 1
        && List.for_all (fun (u, v) -> member u && member v) tree.edges
        &&
        let uf = Graphs.Union_find.create (Graph.n g) in
        List.for_all (fun (u, v) -> Graphs.Union_find.union uf u v) tree.edges
      in
      if not tree_ok then push (Not_a_tree tree.cls);
      if not (Graphs.Domination.is_dominating g member) then
        push (Not_dominating tree.cls))
    p.trees p.weights;
  for v = 0 to Graph.n g - 1 do
    let l = node_load p v in
    if l > 1. +. 1e-9 then push (Overloaded_vertex (v, l))
  done;
  List.rev !violations

let is_valid p = verify p = []

let write oc p =
  List.iter2
    (fun tr w ->
      Printf.fprintf oc "tree %d %.17g\n" tr.cls w;
      Printf.fprintf oc "v";
      Array.iter (fun v -> Printf.fprintf oc " %d" v) tr.vertices;
      Printf.fprintf oc "\n";
      List.iter (fun (u, v) -> Printf.fprintf oc "e %d %d\n" u v) tr.edges)
    p.trees p.weights

let save path p =
  if path = "-" then write stdout p
  else begin
    let oc = open_out path in
    Fun.protect ~finally:(fun () -> close_out oc) (fun () -> write oc p)
  end

let read ic ~graph =
  let trees = ref [] in
  let weights = ref [] in
  let current = ref None in
  let flush () =
    match !current with
    | Some (cls, w, vs, es) ->
      trees :=
        { cls; vertices = Array.of_list (List.rev vs); edges = List.rev es }
        :: !trees;
      weights := w :: !weights;
      current := None
    | None -> ()
  in
  (try
     while true do
       let line = String.trim (input_line ic) in
       if line = "" || line.[0] = '#' then ()
       else if String.length line > 5 && String.sub line 0 5 = "tree " then begin
         flush ();
         Scanf.sscanf line "tree %d %g" (fun cls w ->
             current := Some (cls, w, [], []))
       end
       else if line.[0] = 'v' then begin
         match !current with
         | None -> failwith "Packing.load: vertex line before tree header"
         | Some (cls, w, vs, es) ->
           let extra =
             String.split_on_char ' ' line
             |> List.filter (fun s -> s <> "" && s <> "v")
             |> List.map int_of_string
           in
           current := Some (cls, w, List.rev_append extra vs, es)
       end
       else if line.[0] = 'e' then begin
         match !current with
         | None -> failwith "Packing.load: edge line before tree header"
         | Some (cls, w, vs, es) ->
           Scanf.sscanf line "e %d %d" (fun u v ->
               current := Some (cls, w, vs, (min u v, max u v) :: es))
       end
       else failwith (Printf.sprintf "Packing.load: bad line %S" line)
     done
   with End_of_file -> ());
  flush ();
  { graph; trees = List.rev !trees; weights = List.rev !weights }

let load path ~graph =
  if path = "-" then read stdin ~graph
  else begin
    let ic = open_in path in
    Fun.protect ~finally:(fun () -> close_in ic) (fun () -> read ic ~graph)
  end
