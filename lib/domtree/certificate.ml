module Graph = Graphs.Graph
module Union_find = Graphs.Union_find

type witness = {
  w_class : int;
  w_vertices : int list;
  w_edges : (int * int) list;
}

type t = {
  c_classes_requested : int;
  c_retained : int list;
  c_dropped : int list;
  c_witnesses : witness list;
  c_k : int;
  c_target : int;
  c_live : int;
  c_max_load : int;
}

let ceil_lg n =
  int_of_float (ceil (log (float_of_int (max 2 n)) /. log 2.))

let target ~k ~n = max 1 (k / (3 * max 1 (ceil_lg n)))

(* Live members of each class, ascending. Out-of-range class ids in a
   membership list are ignored here and reported by [check]. *)
let class_members ~live n ~memberships ~classes =
  let members = Array.make classes [] in
  for r = n - 1 downto 0 do
    if live r then
      List.iter
        (fun i -> if i >= 0 && i < classes then members.(i) <- r :: members.(i))
        (memberships r)
  done;
  members

(* Deterministic BFS inside one class: root = smallest member, neighbors
   scanned in Graph.neighbors' sorted order. Returns (reached, tree
   edges sorted as (min,max) pairs). *)
let bfs_tree g ~in_class root =
  let edges = ref [] in
  let visited = Array.make (Graph.n g) false in
  let q = Queue.create () in
  visited.(root) <- true;
  Queue.add root q;
  let count = ref 1 in
  while not (Queue.is_empty q) do
    let u = Queue.pop q in
    Array.iter
      (fun v ->
        if in_class.(v) && not visited.(v) then begin
          visited.(v) <- true;
          incr count;
          edges := (min u v, max u v) :: !edges;
          Queue.add v q
        end)
      (Graph.neighbors g u)
  done;
  (!count, List.sort compare !edges)

let dominates ~live g ~in_class =
  let n = Graph.n g in
  let ok = ref true in
  for r = 0 to n - 1 do
    if
      live r
      && (not in_class.(r))
      && not (Array.exists (fun u -> in_class.(u)) (Graph.neighbors g r))
    then ok := false
  done;
  !ok

let build ?(live = fun _ -> true) g ~memberships ~classes ~k =
  let n = Graph.n g in
  let members = class_members ~live n ~memberships ~classes in
  let retained = ref [] in
  let dropped = ref [] in
  let witnesses = ref [] in
  for i = classes - 1 downto 0 do
    match members.(i) with
    | [] -> dropped := i :: !dropped
    | root :: _ as ms ->
      let in_class = Array.make n false in
      List.iter (fun u -> in_class.(u) <- true) ms;
      let reached, edges = bfs_tree g ~in_class root in
      if reached = List.length ms && dominates ~live g ~in_class then begin
        retained := i :: !retained;
        witnesses :=
          { w_class = i; w_vertices = ms; w_edges = edges } :: !witnesses
      end
      else dropped := i :: !dropped
  done;
  let retained_set = Array.make (max 1 classes) false in
  List.iter (fun i -> retained_set.(i) <- true) !retained;
  let c_live = ref 0 in
  let max_load = ref 0 in
  for r = 0 to n - 1 do
    if live r then begin
      incr c_live;
      let load =
        List.length
          (List.filter
             (fun i -> i >= 0 && i < classes && retained_set.(i))
             (memberships r))
      in
      if load > !max_load then max_load := load
    end
  done;
  {
    c_classes_requested = classes;
    c_retained = !retained;
    c_dropped = !dropped;
    c_witnesses = !witnesses;
    c_k = k;
    c_target = target ~k ~n;
    c_live = !c_live;
    c_max_load = !max_load;
  }

let degraded t = List.length t.c_retained < t.c_classes_requested
let meets_target t = List.length t.c_retained >= t.c_target
let retained_count t = List.length t.c_retained

let check ?(seed = 11) ?(live = fun _ -> true) g ~memberships t =
  let n = Graph.n g in
  let errs = ref [] in
  let err fmt = Printf.ksprintf (fun s -> errs := s :: !errs) fmt in
  (* 1. bookkeeping: retained + dropped partition the requested range *)
  if
    List.sort compare (t.c_retained @ t.c_dropped)
    <> List.init t.c_classes_requested Fun.id
  then
    err "retained/dropped do not partition the %d requested classes"
      t.c_classes_requested;
  if List.map (fun w -> w.w_class) t.c_witnesses <> t.c_retained then
    err "witness list does not mirror the retained classes";
  (* 2. witness structural validity *)
  let members = class_members ~live n ~memberships ~classes:t.c_classes_requested in
  List.iter
    (fun w ->
      let i = w.w_class in
      match w.w_vertices with
      | [] -> err "class %d: empty witness" i
      | root :: _ as vs ->
        if List.sort_uniq compare vs <> vs then
          err "class %d: witness vertices not sorted and duplicate-free" i;
        List.iter
          (fun v ->
            if v < 0 || v >= n then
              err "class %d: witness vertex %d out of range" i v
            else if not (live v) then
              err "class %d: witness vertex %d is dead" i v)
          vs;
        if i >= 0 && i < t.c_classes_requested && vs <> members.(i) then
          err "class %d: witness vertices differ from the class's live members"
            i;
        if List.length w.w_edges <> List.length vs - 1 then
          err "class %d: %d edges over %d vertices is not a tree" i
            (List.length w.w_edges) (List.length vs);
        let uf = Union_find.create n in
        List.iter
          (fun (u, v) ->
            if u < 0 || u >= n || v < 0 || v >= n || not (Graph.mem_edge g u v)
            then err "class %d: witness edge (%d,%d) is not a graph edge" i u v
            else if not (List.mem u vs && List.mem v vs) then
              err "class %d: witness edge (%d,%d) leaves the class" i u v
            else ignore (Union_find.union uf u v))
          w.w_edges;
        List.iter
          (fun v ->
            if
              v >= 0 && v < n && root >= 0 && root < n
              && Union_find.find uf v <> Union_find.find uf root
            then err "class %d: witness edges do not span vertex %d" i v)
          vs)
    t.c_witnesses;
  (* 3. accounting honesty *)
  let c_live = ref 0 in
  for r = 0 to n - 1 do
    if live r then incr c_live
  done;
  if t.c_live <> !c_live then
    err "live-count mismatch: certificate says %d, graph has %d" t.c_live
      !c_live;
  if t.c_target <> target ~k:t.c_k ~n then
    err "target mismatch: certificate says %d, target k=%d n=%d gives %d"
      t.c_target t.c_k n
      (target ~k:t.c_k ~n);
  let retained_set = Array.make (max 1 t.c_classes_requested) false in
  List.iter
    (fun i ->
      if i >= 0 && i < t.c_classes_requested then retained_set.(i) <- true)
    t.c_retained;
  let max_load = ref 0 in
  for r = 0 to n - 1 do
    if live r then begin
      let load =
        List.length
          (List.filter
             (fun i ->
               i >= 0 && i < t.c_classes_requested && retained_set.(i))
             (memberships r))
      in
      if load > !max_load then max_load := load
    end
  done;
  if t.c_max_load <> !max_load then
    err "max-load mismatch: certificate says %d, memberships give %d"
      t.c_max_load !max_load;
  (* 4. the Appendix E tester over the retained classes (remapped to a
        contiguous range), on the live graph *)
  (match t.c_retained with
  | [] -> ()
  | retained ->
    let idx = Array.make (max 1 t.c_classes_requested) (-1) in
    List.iteri
      (fun j i ->
        if i >= 0 && i < t.c_classes_requested then idx.(i) <- j)
      retained;
    let mem' r =
      List.filter_map
        (fun i ->
          if i >= 0 && i < t.c_classes_requested && idx.(i) >= 0 then
            Some idx.(i)
          else None)
        (memberships r)
    in
    let o =
      Tester.run_centralized ~seed ~live g ~memberships:mem'
        ~classes:(List.length retained)
        ~detection_rounds:(Tester.default_detection_rounds ~n)
    in
    if not o.Tester.pass then
      err "Tester rejects the retained classes (domination %b, connectivity %b)"
        o.Tester.domination_ok o.Tester.connectivity_ok);
  match List.rev !errs with [] -> Ok () | es -> Error es

let pp ppf t =
  Format.fprintf ppf
    "certificate: %d/%d classes retained (floor %d, k=%d), %d live nodes, \
     max load %d%s%s"
    (retained_count t) t.c_classes_requested t.c_target t.c_k t.c_live
    t.c_max_load
    (if degraded t then " [degraded]" else "")
    (if meets_target t then "" else " [below floor]")
