module Graph = Graphs.Graph

type result = {
  packing : Packing.t;
  layers : int;
  successes : int;
}

let default_layers ~n =
  max 2 (int_of_float (ceil (log (float_of_int (max 2 n)) /. log 2.)))

let spanning_tree_in g members =
  (* BFS tree of the induced subgraph over the member list *)
  let arr = Array.of_list members in
  let in_set = Hashtbl.create (Array.length arr) in
  Array.iter (fun v -> Hashtbl.replace in_set v ()) arr;
  let member v = Hashtbl.mem in_set v in
  let dist = Graphs.Traversal.distances_within g member arr.(0) in
  let edges = ref [] in
  Array.iter
    (fun v ->
      if v <> arr.(0) && dist.(v) > 0 then begin
        let parent = ref (-1) in
        Array.iter
          (fun u ->
            if member u && dist.(u) = dist.(v) - 1 && !parent < 0 then
              parent := u)
          (Graph.neighbors g v);
        if !parent >= 0 then edges := (min v !parent, max v !parent) :: !edges
      end)
    arr;
  List.sort compare !edges

let run ?(seed = 42) g ~layers =
  if layers < 1 then invalid_arg "Integral_layering.run: layers < 1";
  let n = Graph.n g in
  let rng = Random.State.make [| seed; n; layers; 13 |] in
  let layer_of = Array.init n (fun _ -> Random.State.int rng layers) in
  let trees = ref [] in
  let successes = ref 0 in
  for l = 0 to layers - 1 do
    let allowed v = layer_of.(v) = l in
    match Graphs.Domination.greedy_cds_within g ~allowed with
    | None -> ()
    | Some members ->
      incr successes;
      trees :=
        {
          Packing.cls = l;
          vertices = Array.of_list members;
          edges = spanning_tree_in g members;
        }
        :: !trees
  done;
  let trees = List.rev !trees in
  {
    packing =
      { Packing.graph = g; trees; weights = List.map (fun _ -> 1.) trees };
    layers;
    successes = !successes;
  }
