(** Verify-and-recover decomposition pipeline.

    {!Cds_packing} succeeds w.h.p., not always — a run can leave a
    class disconnected — and a fault adversary can crash nodes out of a
    packing that {e was} valid. This module guards every decomposition
    with the Appendix E {!Tester} (Lemma E.1) and recovers from
    detected failure under one of two policies sharing one result type:

    - [`Retry] (PR 1's behaviour): throw the packing away and re-run
      from a decorrelated fresh seed, up to [max_retries] times, with
      exponential backoff charged to the CONGEST clock;
    - [`Repair]: hand the broken packing to {!Repair}, which fixes only
      the broken classes (orphan reassignment + localized fragment
      splicing) and drops what it cannot fix; the repaired packing is
      re-verified, and only on {e that} failing does the pipeline fall
      back to a reseeded retry. In the distributed variant the repair
      region runs behind a {!Congest.Net.barrier} — a failed repair is
      rolled back (network counters, digests, adversary state) so the
      retry re-executes deterministically, while the discarded rounds
      remain charged.

    Every result carries a {!Certificate} for whatever survived, so
    even a degraded output (classes dropped by repair) is a
    machine-checkable claim, not a log line.

    The distributed pipeline is live-aware: the tester runs with
    [live = Congest.Net.node_alive net], so nodes the installed
    adversary crashed hold no memberships and owe no coverage. With no
    adversary installed this is the identity and the PR 1 semantics are
    unchanged.

    Accounting invariant (distributed): [rounds_charged] equals the sum
    of every attempt's [attempt_rounds] (which includes rounds consumed
    by rolled-back repair regions) plus the backoffs charged between
    attempts. *)

type policy = [ `Retry | `Repair ]

type attempt = {
  attempt_seed : int;  (** seed this attempt ran with *)
  outcome : Tester.outcome;
      (** the attempt's final verdict — the repaired packing's retest
          when a repair was tried, the original test otherwise *)
  attempt_rounds : int;
      (** CONGEST rounds this attempt consumed: packing + test + any
          repair and retest, rolled-back rounds included; 0 for
          centralized runs *)
  repaired : bool;  (** a repair was attempted during this attempt *)
}

type result = {
  packing : Cds_packing.t;  (** the last attempt's packing *)
  memberships : int list array;
      (** final per-real-node class lists: the repaired memberships
          when a repair verified, the packing's own (live nodes only)
          otherwise — what the certificate certifies *)
  attempts : attempt list;  (** chronological, ≥ 1 *)
  verified : bool;  (** the returned memberships passed the tester *)
  retries : int;  (** attempts - 1 *)
  rounds_charged : int;
      (** distributed: rounds consumed including backoff and
          rolled-back repair regions; centralized: 0 *)
  budget_exhausted : bool;
      (** the distributed pipeline stopped retrying because a
          [round_budget] (a deadline expressed in CONGEST rounds) was
          reached before the retry ladder was exhausted; always [false]
          centralized and when no budget was given *)
  repair : Repair.t option;
      (** the repair that produced [memberships], when one verified *)
  certificate : Certificate.t;  (** always present, even unverified *)
  degraded : bool;  (** fewer classes retained than requested *)
  classes_retained : int;
}

val default_max_retries : int

(** Exponential: attempt [i] idles [2^i] rounds before retrying. *)
val default_backoff : int -> int

(** [run_verified ?seed ?max_retries ?jumpstart ?policy ?live ?k g
    ~classes ~layers]: centralized packing + centralized tester +
    centralized recovery. [live] (default: everyone) restricts
    verification and repair to the surviving subgraph. [k] (default
    [3 * classes]) feeds the certificate's Ω(k/log n) accounting. If
    every attempt fails, the last packing is returned with
    [verified = false]. *)
val run_verified :
  ?seed:int ->
  ?max_retries:int ->
  ?jumpstart:int ->
  ?policy:policy ->
  ?live:(int -> bool) ->
  ?k:int ->
  Graphs.Graph.t ->
  classes:int ->
  layers:int ->
  result

(** [pack_verified ?seed ?max_retries ?policy g ~k] is {!run_verified}
    with the default parameters for connectivity(-estimate) [k]. *)
val pack_verified :
  ?seed:int ->
  ?max_retries:int ->
  ?policy:policy ->
  Graphs.Graph.t ->
  k:int ->
  result

(** Distributed packing + distributed tester over the CONGEST runtime;
    [backoff attempt] silent rounds are charged before retry
    [attempt + 1]; liveness is taken from the installed fault
    adversary via {!Congest.Net.node_alive}.

    [round_budget] is a deadline expressed on the CONGEST clock (the
    serve daemon maps wall-clock deadlines to it — DESIGN.md §11): the
    first attempt always runs, but a retry is only started while the
    rounds charged so far plus its backoff stay below the budget.
    Stopping early sets [budget_exhausted]; the accounting invariant
    ([rounds_charged] = attempts + backoffs) is unchanged. *)
val run_verified_distributed :
  ?seed:int ->
  ?max_retries:int ->
  ?backoff:(int -> int) ->
  ?jumpstart:int ->
  ?policy:policy ->
  ?round_budget:int ->
  ?k:int ->
  Congest.Net.t ->
  classes:int ->
  layers:int ->
  result

val pack_verified_distributed :
  ?seed:int ->
  ?max_retries:int ->
  ?backoff:(int -> int) ->
  ?policy:policy ->
  ?round_budget:int ->
  Congest.Net.t ->
  k:int ->
  result
