(** Verify-and-retry decomposition pipeline.

    {!Cds_packing} succeeds w.h.p., not always: a run can leave a class
    disconnected. This module guards every decomposition with the
    Appendix E {!Tester} (Lemma E.1: a broken class is detected w.h.p.,
    a valid partition always passes) and, on detected failure, re-runs
    the decomposition with a fresh seed under a bounded retry policy.
    The distributed variant charges an exponential backoff to the
    CONGEST clock between attempts, so the expected cost of flakiness
    is measured in rounds like everything else. *)

type attempt = {
  attempt_seed : int;  (** seed this attempt ran with *)
  outcome : Tester.outcome;
}

type result = {
  packing : Cds_packing.t;  (** the last attempt's packing *)
  attempts : attempt list;  (** chronological, ≥ 1 *)
  verified : bool;  (** the returned packing passed the tester *)
  retries : int;  (** attempts - 1 *)
  rounds_charged : int;
      (** distributed runs: total rounds consumed including backoff;
          centralized runs: 0 *)
}

val default_max_retries : int

(** Exponential: attempt [i] idles [2^i] rounds before retrying. *)
val default_backoff : int -> int

(** [run_verified ?seed ?max_retries ?jumpstart g ~classes ~layers]:
    centralized packing + centralized tester, retried up to
    [max_retries] times with decorrelated fresh seeds. If every attempt
    fails the last packing is returned with [verified = false]. *)
val run_verified :
  ?seed:int -> ?max_retries:int -> ?jumpstart:int ->
  Graphs.Graph.t -> classes:int -> layers:int ->
  result

(** [pack_verified ?seed ?max_retries g ~k] is {!run_verified} with the
    default parameters for connectivity(-estimate) [k]. *)
val pack_verified :
  ?seed:int -> ?max_retries:int -> Graphs.Graph.t -> k:int -> result

(** Distributed packing + distributed tester over the CONGEST runtime;
    [backoff attempt] silent rounds are charged before retry
    [attempt + 1]. *)
val run_verified_distributed :
  ?seed:int -> ?max_retries:int -> ?backoff:(int -> int) -> ?jumpstart:int ->
  Congest.Net.t -> classes:int -> layers:int ->
  result

val pack_verified_distributed :
  ?seed:int -> ?max_retries:int -> ?backoff:(int -> int) ->
  Congest.Net.t -> k:int ->
  result
