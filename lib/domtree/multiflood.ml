module Net = Congest.Net

let max_slots n memberships =
  let best = ref 0 in
  for r = 0 to n - 1 do
    let l = List.length (memberships r) in
    if l > !best then best := l
  done;
  !best

let flood_min net ~memberships ~init =
  let n = Net.n net in
  let table = Hashtbl.create (4 * n) in
  for r = 0 to n - 1 do
    List.iter (fun i -> Hashtbl.replace table (r, i) (init r i)) (memberships r)
  done;
  let slots = max_slots n memberships in
  let member_lists = Array.init n (fun r -> Array.of_list (memberships r)) in
  let changed = ref true in
  while !changed do
    changed := false;
    for s = 0 to slots - 1 do
      let inboxes =
        Net.broadcast_round net (fun r ->
            if s < Array.length member_lists.(r) then begin
              let i = member_lists.(r).(s) in
              let v, tb = Hashtbl.find table (r, i) in
              Some [| i; v; tb |]
            end
            else None)
      in
      for r = 0 to n - 1 do
        List.iter
          (fun (_, m) ->
            let i = m.(0) in
            match Hashtbl.find_opt table (r, i) with
            | None -> ()
            | Some cur ->
              let pair = (m.(1), m.(2)) in
              if pair < cur then begin
                Hashtbl.replace table (r, i) pair;
                changed := true
              end)
          inboxes.(r)
      done
    done;
    (* same-real virtual adjacency: all of a node's memberships in the
       same class share the same entry here, so nothing further to do *)
    ()
  done;
  table

let membership_sweep net ~memberships ~payload =
  let n = Net.n net in
  let slots = max_slots n memberships in
  let member_lists = Array.init n (fun r -> Array.of_list (memberships r)) in
  let received = Array.make n [] in
  for s = 0 to slots - 1 do
    let inboxes =
      Net.broadcast_round net (fun r ->
          if s < Array.length member_lists.(r) then begin
            let i = member_lists.(r).(s) in
            (* lint: allow msg-budget — one membership id plus the caller's
               per-membership payload (dist_packing/tester send <= 3 words);
               Model.words_budget is enforced per message by Net at runtime,
               so an over-budget payload fails loudly, not silently *)
            Some (Array.of_list (i :: payload r i))
          end
          else None)
    in
    for r = 0 to n - 1 do
      List.iter
        (fun (sender, m) ->
          let i = m.(0) in
          let rest = Array.to_list (Array.sub m 1 (Array.length m - 1)) in
          received.(r) <- (sender, i, rest) :: received.(r))
        inboxes.(r)
    done
  done;
  received
