(** The virtual graph G' of §3.1: each real node simulates 3·L virtual
    nodes — one per (layer, type) pair with layers 1..L and types
    {1,2,3}. Two virtual nodes are adjacent iff they live on the same
    real node or on two G-adjacent real nodes.

    Virtual adjacency is never materialized; algorithms work on the real
    graph and query the indexing functions here. One communication round
    on G' costs Θ(log n) rounds on G (a "meta-round"). *)

type t

(** [create g ~layers] attaches [3 * layers] virtual nodes to every real
    node of [g]. [layers] must be even and >= 2 (the jump-start uses the
    first half). *)
val create : Graphs.Graph.t -> layers:int -> t

val base : t -> Graphs.Graph.t
val layers : t -> int

(** Total number of virtual nodes, [3 * layers * n]. *)
val count : t -> int

(** [vid vg ~real ~layer ~vtype] is the virtual-node id for the given
    coordinates; [layer] in [1..layers], [vtype] in [1..3]. *)
val vid : t -> real:int -> layer:int -> vtype:int -> int

(** Inverse projections of a virtual id. *)
val real_of : t -> int -> int

val layer_of : t -> int -> int
val type_of : t -> int -> int

(** [adjacent vg a b] is virtual adjacency: same real node, or
    G-adjacent real nodes. *)
val adjacent : t -> int -> int -> bool

(** [meta_round_cost vg] is the number of base-graph rounds one virtual
    round costs, [Θ(layers)] = Θ(log n). *)
val meta_round_cost : t -> int
