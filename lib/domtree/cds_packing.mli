(** The fractional CDS/dominating-tree packing algorithm of §3.1 —
    centralized implementation (Theorem 1.2, Appendix C).

    The algorithm partitions the virtual nodes of {!Virtual_graph} into
    [t = Θ(k)] classes so that w.h.p. every class is a connected
    dominating set of the base graph:

    - {b jump-start}: virtual nodes of layers 1..L/2 join uniformly
      random classes (giving domination, Lemma 4.1);
    - {b recursive step}: for each layer ℓ+1, type-1 and type-3 nodes
      join random classes; type-2 nodes join by a maximal matching in
      the {e bridging graph} between old components and type-2 nodes
      (§3.1 steps (1)–(3), Fig. 1), merging components so the total
      excess component count M_ℓ drops by a constant factor per layer
      (Lemma 4.4).

    Component tracking uses per-class incremental union-find, giving the
    near-linear O(m log² n)-style running time of Appendix C. *)

type stats = {
  excess_after_layer : (int * int) list;
      (** [(layer, M_layer)]: total excess components after each layer's
          assignment — the observable of the Fast Merger Lemma (E8). *)
  matched_per_layer : (int * int) list;
      (** matching size found in the bridging graph at each layer *)
  bridging_edges_per_layer : (int * int) list;
      (** number of bridging-graph edges at each layer (Fig. 1 realized) *)
}

type t = {
  vg : Virtual_graph.t;
  classes : int;  (** t, the number of classes *)
  class_of : int array;  (** virtual id -> class (always assigned) *)
  members : int array array;
      (** class -> sorted distinct real vertices with a virtual node in
          the class *)
  connected : bool array;  (** class induces a connected subgraph *)
  dominating : bool array;  (** class dominates the base graph *)
  stats : stats;
}

(** [default_classes ~k] is the paper's t = Θ(k) with the constant used
    throughout this repository. *)
val default_classes : k:int -> int

(** [default_layers ~n] is L = Θ(log n), even. *)
val default_layers : n:int -> int

(** [run ?seed ?jumpstart g ~classes ~layers] executes the full class
    assignment. [jumpstart] (default [layers / 2]) is the number of
    all-random layers before the recursive merging steps begin —
    exposed so experiments can stress the Fast Merger dynamics.
    Requires a connected base graph. *)
val run :
  ?seed:int -> ?jumpstart:int -> Graphs.Graph.t -> classes:int -> layers:int -> t

(** [pack ?seed g ~k] is [run] with the default parameters for
    vertex-connectivity(-estimate) [k]. *)
val pack : ?seed:int -> Graphs.Graph.t -> k:int -> t

(** Classes that ended up being genuine CDSs. *)
val valid_classes : t -> int list

(** [real_classes p] maps each real vertex to the (distinct, sorted)
    classes containing one of its virtual nodes — the O(log n) per-node
    load of Theorem 1.2. *)
val real_classes : t -> int list array
