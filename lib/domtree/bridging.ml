module Graph = Graphs.Graph
module Union_find = Graphs.Union_find

type component = {
  cls : int;
  id : int;
  members : int list;
  active : bool;
}

type t = {
  components : component list;
  edges : (int * (int * int)) list;
}

let build g ~classes ~members ~class1 ~class3 =
  let n = Graph.n g in
  (* components of each class's old members *)
  let ufs = Array.init classes (fun _ -> Union_find.create n) in
  Graph.iter_edges
    (fun u v ->
      for i = 0 to classes - 1 do
        if members i u && members i v then ignore (Union_find.union ufs.(i) u v)
      done)
    g;
  let comp_id i v = Union_find.find ufs.(i) v in
  (* distinct component ids of class i within the closed neighborhood *)
  let nbhd_components i r =
    let acc = ref [] in
    let consider u =
      if members i u then begin
        let c = comp_id i u in
        if not (List.mem c !acc) then acc := c :: !acc
      end
    in
    consider r;
    Array.iter consider (Graph.neighbors g r);
    !acc
  in
  (* (b): deactivation by type-1 connectors *)
  let deactivated = Hashtbl.create 16 in
  for r = 0 to n - 1 do
    let i = class1.(r) in
    let comps = nbhd_components i r in
    if List.length comps >= 2 then
      List.iter (fun c -> Hashtbl.replace deactivated (i, c) ()) comps
  done;
  (* type-3 messages *)
  let msg3 =
    Array.init n (fun r ->
        let i = class3.(r) in
        match nbhd_components i r with
        | [] -> `Empty
        | [ c ] -> `One c
        | _ :: _ :: _ -> `Connector)
  in
  (* (a) + (c): edges of the bridging graph *)
  let edges = ref [] in
  for r = 0 to n - 1 do
    for i = 0 to classes - 1 do
      List.iter
        (fun c ->
          if not (Hashtbl.mem deactivated (i, c)) then begin
            let witnessed = ref false in
            let check rw =
              if (not !witnessed) && class3.(rw) = i then
                match msg3.(rw) with
                | `Connector -> witnessed := true
                | `One c' -> if c' <> c then witnessed := true
                | `Empty -> ()
            in
            check r;
            Array.iter check (Graph.neighbors g r);
            if !witnessed then edges := (r, (i, c)) :: !edges
          end)
        (nbhd_components i r)
    done
  done;
  (* enumerate the components *)
  let comp_members = Hashtbl.create 16 in
  for v = n - 1 downto 0 do
    for i = 0 to classes - 1 do
      if members i v then begin
        let key = (i, comp_id i v) in
        let cur =
          match Hashtbl.find_opt comp_members key with Some l -> l | None -> []
        in
        Hashtbl.replace comp_members key (v :: cur)
      end
    done
  done;
  let components =
    Hashtbl.fold
      (fun (i, c) ms acc ->
        {
          cls = i;
          id = List.fold_left min max_int ms;
          members = ms;
          active = not (Hashtbl.mem deactivated (i, c));
        }
        :: acc)
      comp_members []
    |> List.sort compare
  in
  (* canonicalize edge component ids to the minimum member *)
  let canon = Hashtbl.create 16 in
  (* lint: allow hashtbl-order — one write per distinct key, order-free *)
  Hashtbl.iter
    (fun (i, c) ms -> Hashtbl.replace canon (i, c) (List.fold_left min max_int ms))
    comp_members;
  let edges =
    List.rev_map
      (fun (r, (i, c)) -> (r, (i, Hashtbl.find canon (i, c))))
      !edges
    |> List.sort_uniq compare
  in
  { components; edges }

let degree_of_component t ~cls ~id =
  List.length (List.filter (fun (_, (i, c)) -> i = cls && c = id) t.edges)

let greedy_matching t =
  let taken_node = Hashtbl.create 16 in
  let taken_comp = Hashtbl.create 16 in
  List.filter
    (fun (r, key) ->
      if Hashtbl.mem taken_node r || Hashtbl.mem taken_comp key then false
      else begin
        Hashtbl.replace taken_node r ();
        Hashtbl.replace taken_comp key ();
        true
      end)
    t.edges

let pp ppf t =
  Format.fprintf ppf "@[<v>bridging graph: %d components, %d edges@,"
    (List.length t.components) (List.length t.edges);
  List.iter
    (fun c ->
      Format.fprintf ppf "component (class %d, id %d)%s: {%s}@," c.cls c.id
        (if c.active then "" else " [deactivated]")
        (String.concat "," (List.map string_of_int c.members)))
    t.components;
  List.iter
    (fun (r, (i, c)) ->
      Format.fprintf ppf "type-2 node %d -- (class %d, component %d)@," r i c)
    t.edges;
  Format.fprintf ppf "@]"
