module Graph = Graphs.Graph
module Maxflow = Graphs.Maxflow

type path = {
  endpoint_in : int;
  internals : int list;
  endpoint_out : int;
}

let is_short p = List.length p.internals = 1

let has_neighbor_in g pred x = Array.exists pred (Graph.neighbors g x)

let is_connector_path g ~in_class ~in_component p =
  let in_rest v = in_class v && not (in_component v) in
  let internal_ok x = not (in_class x) in
  (* (A) endpoints on the right sides *)
  in_component p.endpoint_in && in_rest p.endpoint_out
  &&
  (* (B) at most two internal vertices, consecutive edges exist *)
  (match p.internals with
  | [ x ] ->
    internal_ok x
    && Graph.mem_edge g p.endpoint_in x
    && Graph.mem_edge g x p.endpoint_out
  | [ u; w ] ->
    internal_ok u && internal_ok w
    && Graph.mem_edge g p.endpoint_in u
    && Graph.mem_edge g u w
    && Graph.mem_edge g w p.endpoint_out
    (* (C) minimality *)
    && (not (has_neighbor_in g in_rest u))
    && not (has_neighbor_in g (fun v -> in_component v) w)
  | _ -> false)

(* Auxiliary DAG with unit vertex capacities: contract C to a source and
   S \ C to a sink; internal candidates are vertices outside S. *)
let build_network g ~in_class ~in_component =
  let n = Graph.n g in
  let in_rest v = in_class v && not (in_component v) in
  let src = 2 * n and sink = (2 * n) + 1 in
  let net = Maxflow.create ((2 * n) + 2) in
  let adj_c = Array.init n (fun x -> has_neighbor_in g in_component x) in
  let adj_r = Array.init n (fun x -> has_neighbor_in g in_rest x) in
  for x = 0 to n - 1 do
    if not (in_class x) then begin
      Maxflow.add_edge net (2 * x) ((2 * x) + 1) 1;
      if adj_c.(x) then Maxflow.add_edge net src (2 * x) 1;
      if adj_r.(x) then Maxflow.add_edge net ((2 * x) + 1) sink 1
    end
  done;
  Graph.iter_edges
    (fun a b ->
      if (not (in_class a)) && not (in_class b) then begin
        (* directed long-path links u -> w, both orientations considered *)
        let link u w =
          if adj_c.(u) && adj_r.(w) && (not adj_r.(u)) && not adj_c.(w) then
            Maxflow.add_edge net ((2 * u) + 1) (2 * w) 1
        in
        link a b;
        link b a
      end)
    g;
  (net, src, sink)

let max_disjoint g ~in_class ~in_component =
  let net, src, sink = build_network g ~in_class ~in_component in
  Maxflow.max_flow net ~src ~sink

let enumerate g ~in_class ~in_component =
  let in_rest v = in_class v && not (in_component v) in
  (* Greedy maximal family, short paths first: at least half the optimum
     (each chosen path blocks at most two disjoint alternatives). *)
  let n = Graph.n g in
  let used = Array.make n false in
  let adj_c x = has_neighbor_in g in_component x in
  let adj_r x = has_neighbor_in g in_rest x in
  let pick_neighbor pred x =
    let found = ref (-1) in
    Array.iter
      (fun v -> if !found < 0 && pred v then found := v)
      (Graph.neighbors g x);
    !found
  in
  let paths = ref [] in
  (* short paths first *)
  for x = 0 to n - 1 do
    if (not (in_class x)) && (not used.(x)) && adj_c x && adj_r x then begin
      used.(x) <- true;
      paths :=
        {
          endpoint_in = pick_neighbor in_component x;
          internals = [ x ];
          endpoint_out = pick_neighbor in_rest x;
        }
        :: !paths
    end
  done;
  (* long paths *)
  Graph.iter_edges
    (fun a b ->
      let try_link u w =
        if
          (not (in_class u)) && (not (in_class w))
          && (not used.(u)) && (not used.(w))
          && adj_c u && adj_r w
          && (not (adj_r u)) && not (adj_c w)
        then begin
          used.(u) <- true;
          used.(w) <- true;
          paths :=
            {
              endpoint_in = pick_neighbor in_component u;
              internals = [ u; w ];
              endpoint_out = pick_neighbor in_rest w;
            }
            :: !paths
        end
      in
      try_link a b;
      try_link b a)
    g;
  List.rev !paths

let realize vg ~layer p =
  match p.internals with
  | [ x ] -> [ (Virtual_graph.vid vg ~real:x ~layer ~vtype:1, 1) ]
  | [ u; w ] ->
    [
      (Virtual_graph.vid vg ~real:u ~layer ~vtype:2, 2);
      (Virtual_graph.vid vg ~real:w ~layer ~vtype:3, 3);
    ]
  | _ -> invalid_arg "Connector.realize: not a connector path"

type audit = {
  classes_checked : int;
  components_checked : int;
  min_disjoint : int;
  all_above_k : bool;
}

let audit_jumpstart ?(seed = 7) g ~classes ~layers ~k =
  let n = Graph.n g in
  let rng = Random.State.make [| seed; n; classes |] in
  let member = Array.make_matrix classes n false in
  for _layer = 1 to layers / 2 do
    for r = 0 to n - 1 do
      for _vtype = 1 to 3 do
        member.(Random.State.int rng classes).(r) <- true
      done
    done
  done;
  let classes_checked = ref 0 in
  let components_checked = ref 0 in
  let min_disjoint = ref max_int in
  for i = 0 to classes - 1 do
    let in_class v = member.(i).(v) in
    if Graphs.Domination.is_dominating g in_class then begin
      let sub = Graph.spanning_subgraph g (fun u v -> in_class u && in_class v) in
      (* component labels among members *)
      let _, labels = Graphs.Traversal.components sub in
      let roots = Hashtbl.create 8 in
      for v = 0 to n - 1 do
        if in_class v then Hashtbl.replace roots labels.(v) ()
      done;
      if Hashtbl.length roots >= 2 then begin
        incr classes_checked;
        (* lint: allow hashtbl-order — commutative counter + min updates *)
        Hashtbl.iter
          (fun root () ->
            incr components_checked;
            let in_component v = in_class v && labels.(v) = root in
            let d = max_disjoint g ~in_class ~in_component in
            if d < !min_disjoint then min_disjoint := d)
          roots
      end
    end
  done;
  {
    classes_checked = !classes_checked;
    components_checked = !components_checked;
    min_disjoint = !min_disjoint;
    all_above_k = !min_disjoint = max_int || !min_disjoint >= k;
  }
