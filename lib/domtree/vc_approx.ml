module Graph = Graphs.Graph

type result = {
  estimate : int;
  accepted_guess : int;
  attempts : int;
  packing : Packing.t;
}

let guesses n =
  (* n/2, n/4, ..., down to 1 *)
  let rec go acc g = if g < 1 then List.rev acc else go (g :: acc) (g / 2) in
  go [] (max 1 (n / 2))

let finish ~attempts ~guess res =
  let packing = Tree_extract.of_cds_packing res in
  {
    estimate = max 1 (Packing.count packing);
    accepted_guess = guess;
    attempts;
    packing;
  }

let centralized ?(seed = 42) g =
  if Graph.n g < 2 then invalid_arg "Vc_approx.centralized: trivial graph";
  let n = Graph.n g in
  let detection_rounds = Tester.default_detection_rounds ~n in
  let rec try_guess attempts = function
    | [] -> assert false (* guess 1 always yields classes = 1 *)
    | guess :: rest ->
      let res = Cds_packing.pack ~seed:(seed + attempts) g ~k:guess in
      let memberships =
        let per_real = Cds_packing.real_classes res in
        fun r -> per_real.(r)
      in
      let t =
        Tester.run_centralized ~seed:(seed + attempts) g ~memberships
          ~classes:res.Cds_packing.classes ~detection_rounds
      in
      if t.Tester.pass || rest = [] then finish ~attempts:(attempts + 1) ~guess res
      else try_guess (attempts + 1) rest
  in
  try_guess 0 (guesses n)

let distributed ?(seed = 42) net =
  let g = Congest.Net.graph net in
  if Graph.n g < 2 then invalid_arg "Vc_approx.distributed: trivial graph";
  let n = Graph.n g in
  let detection_rounds = Tester.default_detection_rounds ~n in
  let rec try_guess attempts = function
    | [] -> assert false
    | guess :: rest ->
      let res = Dist_packing.pack ~seed:(seed + attempts) net ~k:guess in
      let memberships =
        let per_real = Cds_packing.real_classes res in
        fun r -> per_real.(r)
      in
      let t =
        Tester.run_distributed ~seed:(seed + attempts) net ~memberships
          ~classes:res.Cds_packing.classes ~detection_rounds
      in
      if t.Tester.pass || rest = [] then finish ~attempts:(attempts + 1) ~guess res
      else try_guess (attempts + 1) rest
  in
  try_guess 0 (guesses n)

let approximation_ratio ~truth result =
  let k = float_of_int (max 1 truth) in
  let kh = float_of_int (max 1 result.estimate) in
  Float.max (k /. kh) (kh /. k)
