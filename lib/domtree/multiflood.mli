(** Simulation of per-class flooding on the virtual graph (§3.1).

    Every real node holds one value per class membership; one virtual
    round is simulated by [max memberships] base-graph rounds (the
    meta-round of §3.1), in which each real node broadcasts one
    (class, value, tiebreak) triple per membership slot. Values flow
    only along intra-class virtual edges, i.e. between same-class
    memberships of adjacent (or identical) real nodes. *)

(** [flood_min net ~memberships ~init] floods minimum (value, tiebreak)
    pairs within every class-component simultaneously; returns the fixed
    point: [(real, class) -> (value, tiebreak)]. Termination is detected
    by the simulator (one quiescent sweep is charged).

    Instantiations used in this repository:
    - component identification: [init r i = (r, r)] gives every
      membership the minimum real id of its class-component;
    - flag dissemination: [init r i = (flag, r)] with flag ∈ {0,1}
      spreads a 0 flag to the whole component;
    - maximum aggregation: negate values at the call site. *)
val flood_min :
  Congest.Net.t ->
  memberships:(int -> int list) ->
  init:(int -> int -> int * int) ->
  (int * int, int * int) Hashtbl.t

(** [membership_sweep net ~memberships ~payload] performs one meta-round
    in which every real node broadcasts [payload r cls] (a short word
    list, to which the class is prepended) once per membership; returns
    for every node the list of [(sender, class, payload)] it received. *)
val membership_sweep :
  Congest.Net.t ->
  memberships:(int -> int list) ->
  payload:(int -> int -> int list) ->
  (int * int * int list) list array
