module Graph = Graphs.Graph
module Union_find = Graphs.Union_find

type stats = {
  excess_after_layer : (int * int) list;
  matched_per_layer : (int * int) list;
  bridging_edges_per_layer : (int * int) list;
}

type t = {
  vg : Virtual_graph.t;
  classes : int;
  class_of : int array;
  members : int array array;
  connected : bool array;
  dominating : bool array;
  stats : stats;
}

let default_classes ~k = max 1 (k / 3)

let default_layers ~n =
  let lg = int_of_float (ceil (log (float_of_int (max 2 n)) /. log 2.)) in
  max 4 (2 * lg)

(* Mutable algorithm state: per-class incremental component tracking. *)
type state = {
  g : Graph.t;
  vg : Virtual_graph.t;
  t : int;
  rng : Random.State.t;
  class_of : int array; (* vid -> class or -1 *)
  in_class : bool array array; (* class -> real -> member? *)
  uf : Union_find.t array; (* class -> union-find over reals *)
  classes_of_real : int list array; (* real -> distinct classes, unsorted *)
}

let make_state ?(seed = 42) g vg t =
  let n = Graph.n g in
  {
    g;
    vg;
    t;
    rng = Random.State.make [| seed; n; t |];
    class_of = Array.make (Virtual_graph.count vg) (-1);
    in_class = Array.init t (fun _ -> Array.make n false);
    uf = Array.init t (fun _ -> Union_find.create n);
    classes_of_real = Array.make n [];
  }

(* Register the (already recorded in class_of) assignment of the virtual
   node on [real] to class [i], merging components incrementally. *)
let add_member st ~real ~cls =
  if not st.in_class.(cls).(real) then begin
    st.in_class.(cls).(real) <- true;
    st.classes_of_real.(real) <- cls :: st.classes_of_real.(real);
    Array.iter
      (fun u ->
        if st.in_class.(cls).(u) then ignore (Union_find.union st.uf.(cls) real u))
      (Graph.neighbors st.g real)
  end

let assign st ~vid ~cls =
  st.class_of.(vid) <- cls;
  add_member st ~real:(Virtual_graph.real_of st.vg vid) ~cls

let random_class st = Random.State.int st.rng st.t

(* Distinct component roots of class [i] within the closed neighborhood
   of real vertex [r] (same-real adjacency of the virtual graph makes r
   itself count). *)
let neighborhood_components st ~cls ~real =
  let acc = ref [] in
  let consider u =
    if st.in_class.(cls).(u) then begin
      let root = Union_find.find st.uf.(cls) u in
      if not (List.mem root !acc) then acc := root :: !acc
    end
  in
  consider real;
  Array.iter consider (Graph.neighbors st.g real);
  !acc

(* Total excess component count M = sum over classes of (N_i - 1). *)
let excess st =
  let total = ref 0 in
  for i = 0 to st.t - 1 do
    let roots = Hashtbl.create 16 in
    Array.iteri
      (fun r inside ->
        if inside then Hashtbl.replace roots (Union_find.find st.uf.(i) r) ())
      st.in_class.(i);
    let c = Hashtbl.length roots in
    if c >= 1 then total := !total + (c - 1)
  done;
  !total

type type3_msg =
  | Empty
  | One of int (* component root *)
  | Connector

let shuffle rng arr =
  let a = Array.copy arr in
  for i = Array.length a - 1 downto 1 do
    let j = Random.State.int rng (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done;
  a

(* One recursive step: assign classes to the virtual nodes of layer
   [new_layer] given the components of layers < new_layer. *)
let assign_layer st ~new_layer =
  let n = Graph.n st.g in
  let vg = st.vg in
  (* 1. type-1 and type-3 new nodes pick random classes (recorded but not
        yet merged into the component structure: the bridging graph is
        about OLD components). *)
  let class1 = Array.init n (fun _ -> random_class st) in
  let class3 = Array.init n (fun _ -> random_class st) in
  (* 2a. deactivation by type-1 connectors: components of class i seen
         (>= 2 at once) from a type-1 new node of class i. *)
  let deactivated = Hashtbl.create 64 in
  for r = 0 to n - 1 do
    let i = class1.(r) in
    let comps = neighborhood_components st ~cls:i ~real:r in
    if List.length comps >= 2 then
      List.iter (fun root -> Hashtbl.replace deactivated (i, root) ()) comps
  done;
  (* 2b. type-3 messages *)
  let msg3 =
    Array.init n (fun r ->
        let i = class3.(r) in
        match neighborhood_components st ~cls:i ~real:r with
        | [] -> Empty
        | [ root ] -> One root
        | _ :: _ :: _ -> Connector)
  in
  (* 2c. bridging adjacency for each type-2 new node (one per real) *)
  let bridging_edge_count = ref 0 in
  let listv =
    Array.init n (fun r ->
        (* classes present around r *)
        let acc = ref [] in
        let add_for u =
          List.iter
            (fun i ->
              let comps = neighborhood_components st ~cls:i ~real:r in
              List.iter
                (fun c ->
                  if
                    (not (Hashtbl.mem deactivated (i, c)))
                    && not (List.mem (i, c) !acc)
                  then begin
                    (* condition (c): some type-3 neighbor w of class i
                       witnessing another component *)
                    let witnessed = ref false in
                    let check_w rw =
                      if (not !witnessed) && class3.(rw) = i then
                        match msg3.(rw) with
                        | Empty -> ()
                        | Connector -> witnessed := true
                        | One c' -> if c' <> c then witnessed := true
                    in
                    check_w r;
                    Array.iter check_w (Graph.neighbors st.g r);
                    if !witnessed then begin
                      acc := (i, c) :: !acc;
                      incr bridging_edge_count
                    end
                  end)
                comps)
            (List.sort_uniq compare st.classes_of_real.(u))
        in
        add_for r;
        Array.iter add_for (Graph.neighbors st.g r);
        !acc)
  in
  (* 3. greedy maximal matching between type-2 nodes and components *)
  let matched_component = Hashtbl.create 64 in
  let matched = ref 0 in
  let class2 = Array.make n (-1) in
  let order = shuffle st.rng (Array.init n (fun r -> r)) in
  Array.iter
    (fun r ->
      let options = shuffle st.rng (Array.of_list listv.(r)) in
      let chosen = ref None in
      Array.iter
        (fun (i, c) ->
          if !chosen = None && not (Hashtbl.mem matched_component (i, c)) then begin
            Hashtbl.replace matched_component (i, c) ();
            chosen := Some i;
            incr matched
          end)
        options;
      match !chosen with
      | Some i -> class2.(r) <- i
      | None -> class2.(r) <- random_class st)
    order;
  (* 4. commit the whole layer *)
  for r = 0 to n - 1 do
    assign st ~vid:(Virtual_graph.vid vg ~real:r ~layer:new_layer ~vtype:1)
      ~cls:class1.(r);
    assign st ~vid:(Virtual_graph.vid vg ~real:r ~layer:new_layer ~vtype:2)
      ~cls:class2.(r);
    assign st ~vid:(Virtual_graph.vid vg ~real:r ~layer:new_layer ~vtype:3)
      ~cls:class3.(r)
  done;
  (!matched, !bridging_edge_count)

let run ?(seed = 42) ?jumpstart g ~classes ~layers =
  if classes < 1 then invalid_arg "Cds_packing.run: classes < 1";
  let jumpstart = match jumpstart with Some j -> j | None -> layers / 2 in
  if jumpstart < 1 || jumpstart > layers then
    invalid_arg "Cds_packing.run: jumpstart out of range";
  let vg = Virtual_graph.create g ~layers in
  let st = make_state ~seed g vg classes in
  let n = Graph.n g in
  (* jump-start: layers 1..jumpstart (default L/2), all types random *)
  for layer = 1 to jumpstart do
    for r = 0 to n - 1 do
      for vtype = 1 to 3 do
        assign st ~vid:(Virtual_graph.vid vg ~real:r ~layer ~vtype)
          ~cls:(random_class st)
      done
    done
  done;
  let excess0 = excess st in
  let stats_excess = ref [ (jumpstart, excess0) ] in
  let stats_matched = ref [] in
  let stats_bridging = ref [] in
  for new_layer = jumpstart + 1 to layers do
    let matched, bridging = assign_layer st ~new_layer in
    stats_excess := (new_layer, excess st) :: !stats_excess;
    stats_matched := (new_layer, matched) :: !stats_matched;
    stats_bridging := (new_layer, bridging) :: !stats_bridging
  done;
  (* harvest per-class results *)
  let members =
    Array.init classes (fun i ->
        let acc = ref [] in
        for r = n - 1 downto 0 do
          if st.in_class.(i).(r) then acc := r :: !acc
        done;
        Array.of_list !acc)
  in
  let connected =
    Array.init classes (fun i ->
        let ms = members.(i) in
        Array.length ms > 0
        &&
        let root = Union_find.find st.uf.(i) ms.(0) in
        Array.for_all (fun r -> Union_find.find st.uf.(i) r = root) ms)
  in
  let dominating =
    Array.init classes (fun i ->
        Graphs.Domination.is_dominating g (fun v -> st.in_class.(i).(v)))
  in
  {
    vg;
    classes;
    class_of = st.class_of;
    members;
    connected;
    dominating;
    stats =
      {
        excess_after_layer = List.rev !stats_excess;
        matched_per_layer = List.rev !stats_matched;
        bridging_edges_per_layer = List.rev !stats_bridging;
      };
  }

let pack ?seed g ~k =
  run ?seed g ~classes:(default_classes ~k) ~layers:(default_layers ~n:(Graph.n g))

let valid_classes p =
  let acc = ref [] in
  for i = p.classes - 1 downto 0 do
    if p.connected.(i) && p.dominating.(i) then acc := i :: !acc
  done;
  !acc

let real_classes (p : t) =
  let n = Graph.n (Virtual_graph.base p.vg) in
  let sets = Array.make n [] in
  Array.iteri
    (fun vid cls ->
      if cls >= 0 then begin
        let r = Virtual_graph.real_of p.vg vid in
        if not (List.mem cls sets.(r)) then sets.(r) <- cls :: sets.(r)
      end)
    p.class_of;
  Array.map (List.sort compare) sets
