(** The predecessor algorithm of [CGK, SODA'14] ("A new perspective on
    vertex connectivity"), reimplemented as the paper's comparison
    baseline (see §3.1, "An intuitive comparison with the approach of
    [12]").

    Where the PODC'14 algorithm only {e benefits implicitly} from the
    abundance of connector paths, the baseline finds them explicitly:
    per layer, for every class with multiple components, it enumerates
    internally-disjoint connector paths of each component (a
    vertex-capacitated flow per component — the expensive part that
    blocks a distributed implementation and makes the centralized
    algorithm Ω(n³)-flavored) and allocates the new layer's virtual
    nodes on the paths' internal vertices to that class.

    Outputs the same result shape as {!Cds_packing}, so the verifier,
    extractor and benchmarks apply unchanged. The E7b experiment row
    compares its running time against the near-linear Theorem 1.2
    implementation. *)

val run :
  ?seed:int ->
  ?jumpstart:int ->
  Graphs.Graph.t ->
  classes:int ->
  layers:int ->
  Cds_packing.t

val pack : ?seed:int -> Graphs.Graph.t -> k:int -> Cds_packing.t
