module Graph = Graphs.Graph

let spanning_tree_of_members g members =
  (* BFS tree of the induced subgraph; members must induce a connected
     subgraph *)
  let in_set = Hashtbl.create (Array.length members) in
  Array.iter (fun v -> Hashtbl.replace in_set v ()) members;
  let member v = Hashtbl.mem in_set v in
  let dist = Graphs.Traversal.distances_within g member members.(0) in
  let edges = ref [] in
  Array.iter
    (fun v ->
      if v <> members.(0) then begin
        (* connect v to any already-closer member neighbor *)
        let parent = ref (-1) in
        Array.iter
          (fun u -> if member u && dist.(u) = dist.(v) - 1 && !parent < 0 then parent := u)
          (Graph.neighbors g v);
        if !parent >= 0 then
          edges := (min v !parent, max v !parent) :: !edges
      end)
    members;
  List.sort compare !edges

let of_cds_packing (result : Cds_packing.t) =
  let g = Virtual_graph.base result.Cds_packing.vg in
  let valid = Cds_packing.valid_classes result in
  let trees =
    List.map
      (fun cls ->
        let members = result.Cds_packing.members.(cls) in
        {
          Packing.cls;
          vertices = members;
          edges = spanning_tree_of_members g members;
        })
      valid
  in
  let mult =
    let n = Graph.n g in
    let counts = Array.make n 0 in
    List.iter
      (fun tr ->
        Array.iter
          (fun v -> counts.(v) <- counts.(v) + 1)
          tr.Packing.vertices)
      trees;
    Array.fold_left max 1 counts
  in
  let w = 1. /. float_of_int mult in
  {
    Packing.graph = g;
    trees;
    weights = List.map (fun _ -> w) trees;
  }

let fractional_size result =
  let p = of_cds_packing result in
  Packing.size p

let integral_subpacking (p : Packing.t) =
  let n = Graph.n p.Packing.graph in
  let used = Array.make n false in
  let chosen =
    List.filter
      (fun tr ->
        let free =
          Array.for_all (fun v -> not used.(v)) tr.Packing.vertices
        in
        if free then
          Array.iter (fun v -> used.(v) <- true) tr.Packing.vertices;
        free)
      p.Packing.trees
  in
  {
    Packing.graph = p.Packing.graph;
    trees = chosen;
    weights = List.map (fun _ -> 1.) chosen;
  }
