(** Machine-checkable certificates of (possibly degraded) CDS packings.

    Theorem 1.1 promises Ω(k/log n) vertex-disjoint connected dominating
    sets. After faults and repair, some classes may be gone — what
    remains is a {e degraded} packing, and this module makes "what
    remains" a proof-carrying claim instead of a log line. A certificate
    bundles

    - a {b witness spanning tree} per retained class — an explicit edge
      set over the class's live members proving its connectivity
      structurally (no randomness, no w.h.p. caveat);
    - {b accounting}: classes requested vs. retained vs. the repo's
      realization of the Ω(k/log n) floor ({!target});
    - the {b live context} it was issued for (live-node count,
      per-node membership load).

    {!check} re-validates everything from scratch against the graph and
    the memberships the certificate claims to certify: witness trees are
    checked edge-by-edge (real edges, inside the class, spanning,
    acyclic by count), the retained/dropped bookkeeping is re-derived,
    and the retained classes are re-run through the Appendix E
    {!Tester} on the live graph — so a certificate that passes [check]
    is sound for domination, structurally sound for connectivity, and
    honest about how much of the paper's guarantee survived. *)

type witness = {
  w_class : int;  (** class id in the original numbering *)
  w_vertices : int list;  (** the class's live members, sorted *)
  w_edges : (int * int) list;
      (** spanning-tree edges over [w_vertices], [(min,max)] sorted;
          [length w_edges = length w_vertices - 1] *)
}

type t = {
  c_classes_requested : int;  (** classes the decomposition attempted *)
  c_retained : int list;  (** class ids still connected + dominating *)
  c_dropped : int list;  (** class ids lost to faults/repair *)
  c_witnesses : witness list;  (** one per retained class, same order *)
  c_k : int;  (** connectivity parameter the packing targeted *)
  c_target : int;  (** {!target} [~k ~n] at issue time *)
  c_live : int;  (** live nodes when issued *)
  c_max_load : int;
      (** max number of retained-class memberships on any live node *)
}

(** [target ~k ~n] is the repository's constant realization of the
    Ω(k/log n) floor: [max 1 (k / (3 * ceil lg n))] — the number of
    classes below which a degraded packing no longer witnesses the
    theorem's asymptotic promise. *)
val target : k:int -> n:int -> int

(** [build ?live g ~memberships ~classes ~k] derives a certificate: a
    class is {e retained} iff its live members are non-empty, connected
    in the live graph, and dominate every live node; all others are
    dropped. Witness trees are BFS trees inside each retained class
    (deterministic: rooted at the smallest member, neighbors scanned in
    sorted order). *)
val build :
  ?live:(int -> bool) ->
  Graphs.Graph.t ->
  memberships:(int -> int list) ->
  classes:int ->
  k:int ->
  t

(** [check ?seed ?live g ~memberships cert] re-validates [cert] against
    the graph and memberships it claims to certify. Returns [Ok ()] or
    [Error reasons] listing every violated clause: malformed or
    non-spanning witnesses, wrong retained/dropped bookkeeping, stale
    accounting fields, or a Tester failure on the retained classes.
    [seed] feeds the Tester's randomized connectivity pass. *)
val check :
  ?seed:int ->
  ?live:(int -> bool) ->
  Graphs.Graph.t ->
  memberships:(int -> int list) ->
  t ->
  (unit, string list) result

(** A certificate is degraded iff it retains fewer classes than
    requested. *)
val degraded : t -> bool

(** [meets_target cert] — does the retained count still witness the
    Ω(k/log n) floor? *)
val meets_target : t -> bool

val retained_count : t -> int
val pp : Format.formatter -> t -> unit
