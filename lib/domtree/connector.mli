(** Connector paths (§4.1, Fig. 2): the analysis toolbox behind the Fast
    Merger Lemma, realized executably so Lemma 4.3 (Connector Abundance)
    can be audited empirically (experiment E9).

    Given a class's member set S (its projection Ψ(V_i^ℓ) onto G) and a
    connected component C of G[S], a {e potential connector path} is a
    G-path from Ψ(C) to Ψ(S \ C) with at most two internal vertices, all
    internal vertices outside S, and (minimality, condition (C)) for a
    two-internal path s,u,w,t: u has no neighbor in S \ C and w has no
    neighbor in C. *)

type path = {
  endpoint_in : int;  (** endpoint inside the component C *)
  internals : int list;  (** one or two internal vertices, in order *)
  endpoint_out : int;  (** endpoint in S \ C *)
}

(** [is_short p] holds for one-internal-vertex paths. *)
val is_short : path -> bool

(** [is_connector_path g ~in_class ~in_component p] checks conditions
    (A), (B), (C) of §4.1. *)
val is_connector_path :
  Graphs.Graph.t -> in_class:(int -> bool) -> in_component:(int -> bool) ->
  path -> bool

(** [max_disjoint g ~in_class ~in_component] is the maximum number of
    internally vertex-disjoint potential connector paths for the
    component, computed by a vertex-capacitated flow on the two-level
    auxiliary DAG. Lemma 4.3: >= k whenever the class is dominating and
    has >= 2 components. *)
val max_disjoint :
  Graphs.Graph.t -> in_class:(int -> bool) -> in_component:(int -> bool) -> int

(** [enumerate g ~in_class ~in_component] lists a {e maximal} internally
    disjoint family of connector paths, greedily, short paths first (its
    size is at least half of [max_disjoint]). *)
val enumerate :
  Graphs.Graph.t -> in_class:(int -> bool) -> in_component:(int -> bool) ->
  path list

(** [realize vg ~layer p] applies rules (D)/(E) of §4.1: the virtual-node
    ids (with their types) that the path's internal vertices contribute
    in layer [layer] — one type-1 node for a short path; a type-2 node
    (on the component side) and a type-3 node (on the far side) for a
    long path. Fig. 2, executable. *)
val realize : Virtual_graph.t -> layer:int -> path -> (int * int) list
(** Returns [(virtual id, vtype)] pairs. *)

type audit = {
  classes_checked : int;
  components_checked : int;
  min_disjoint : int;  (** min over audited components; max_int if none *)
  all_above_k : bool;
}

(** [audit_jumpstart ?seed g ~classes ~layers ~k] reproduces the
    algorithm's jump-start (layers 1..L/2 random classes), then checks
    Lemma 4.3 for every class with >= 2 components: each component must
    admit >= k internally disjoint connector paths. *)
val audit_jumpstart :
  ?seed:int -> Graphs.Graph.t -> classes:int -> layers:int -> k:int -> audit
