module Graph = Graphs.Graph
module Union_find = Graphs.Union_find

(* Local per-class membership state; deliberately recomputes component
   structure per layer (the baseline is the slow algorithm). *)
type state = {
  g : Graph.t;
  t : int;
  rng : Random.State.t;
  member : bool array array; (* class -> real -> in class *)
}

let components_of st cls =
  let n = Graph.n st.g in
  let uf = Union_find.create n in
  Graph.iter_edges
    (fun u v ->
      if st.member.(cls).(u) && st.member.(cls).(v) then
        ignore (Union_find.union uf u v))
    st.g;
  let roots = Hashtbl.create 16 in
  for r = 0 to n - 1 do
    if st.member.(cls).(r) then begin
      let root = Union_find.find uf r in
      let members =
        match Hashtbl.find_opt roots root with Some l -> l | None -> []
      in
      Hashtbl.replace roots root (r :: members)
    end
  done;
  Hashtbl.fold (fun _ members acc -> members :: acc) roots []
  |> List.sort compare

let excess st =
  let total = ref 0 in
  for i = 0 to st.t - 1 do
    let c = List.length (components_of st i) in
    if c >= 1 then total := !total + (c - 1)
  done;
  !total

(* One layer: every real vertex has 3 fresh virtual-node slots. Classes
   with several components claim slots on their connector paths'
   internal vertices; remaining slots go to random classes. *)
let assign_layer st ~slots_per_real =
  let n = Graph.n st.g in
  let free = Array.make n slots_per_real in
  let claimed = ref [] in
  let claim r cls =
    if free.(r) > 0 then begin
      free.(r) <- free.(r) - 1;
      claimed := (r, cls) :: !claimed;
      true
    end
    else false
  in
  let merged = ref 0 in
  for i = 0 to st.t - 1 do
    let in_class v = st.member.(i).(v) in
    let comps = components_of st i in
    if List.length comps >= 2 then
      List.iter
        (fun members ->
          let in_component =
            let tbl = Hashtbl.create (List.length members) in
            List.iter (fun v -> Hashtbl.replace tbl v ()) members;
            fun v -> Hashtbl.mem tbl v
          in
          (* the expensive explicit step of [12]: enumerate a disjoint
             family of connector paths for this component *)
          let paths = Connector.enumerate st.g ~in_class ~in_component in
          (* take the first path whose internals still have free slots *)
          let rec try_paths = function
            | [] -> ()
            | p :: rest ->
              let internals = p.Connector.internals in
              if List.for_all (fun r -> free.(r) > 0) internals then begin
                List.iter (fun r -> ignore (claim r i)) internals;
                incr merged
              end
              else try_paths rest
          in
          try_paths paths)
        comps
  done;
  (* commit the claims, fill the rest randomly *)
  List.iter (fun (r, cls) -> st.member.(cls).(r) <- true) !claimed;
  for r = 0 to n - 1 do
    for _ = 1 to free.(r) do
      st.member.(Random.State.int st.rng st.t).(r) <- true
    done
  done;
  !merged

let run ?(seed = 42) ?jumpstart g ~classes ~layers =
  if classes < 1 then invalid_arg "Cgk_baseline.run: classes < 1";
  let jumpstart = match jumpstart with Some j -> j | None -> layers / 2 in
  if jumpstart < 1 || jumpstart > layers then
    invalid_arg "Cgk_baseline.run: jumpstart out of range";
  let n = Graph.n g in
  let vg = Virtual_graph.create g ~layers in
  let st =
    {
      g;
      t = classes;
      rng = Random.State.make [| seed; n; classes; 23 |];
      member = Array.init classes (fun _ -> Array.make n false);
    }
  in
  (* jump-start: random classes, 3 slots per layer *)
  for _layer = 1 to jumpstart do
    for r = 0 to n - 1 do
      for _slot = 1 to 3 do
        st.member.(Random.State.int st.rng classes).(r) <- true
      done
    done
  done;
  let stats_excess = ref [ (jumpstart, excess st) ] in
  let stats_matched = ref [] in
  for layer = jumpstart + 1 to layers do
    let merged = assign_layer st ~slots_per_real:3 in
    stats_excess := (layer, excess st) :: !stats_excess;
    stats_matched := (layer, merged) :: !stats_matched
  done;
  (* harvest into the shared result shape; class_of is per-virtual-node
     in Cds_packing but the baseline tracks membership at the real level,
     so synthesize an assignment: the first virtual node of a member real
     carries the class (enough for real_classes/members consumers) *)
  let class_of = Array.make (Virtual_graph.count vg) (-1) in
  let members =
    Array.init classes (fun i ->
        let acc = ref [] in
        for r = n - 1 downto 0 do
          if st.member.(i).(r) then acc := r :: !acc
        done;
        Array.of_list !acc)
  in
  (* distribute classes over each real's virtual ids, one per membership *)
  for r = 0 to n - 1 do
    let mine = ref [] in
    for i = classes - 1 downto 0 do
      if st.member.(i).(r) then mine := i :: !mine
    done;
    let slot = ref 0 in
    List.iter
      (fun i ->
        let layer = (!slot / 3) + 1 and vtype = (!slot mod 3) + 1 in
        if layer <= layers then
          class_of.(Virtual_graph.vid vg ~real:r ~layer ~vtype) <- i;
        incr slot)
      !mine
  done;
  let connected =
    Array.init classes (fun i ->
        let ms = members.(i) in
        Array.length ms > 0
        &&
        let in_set v = st.member.(i).(v) in
        let dist = Graphs.Traversal.distances_within g in_set ms.(0) in
        Array.for_all (fun r -> dist.(r) >= 0) ms)
  in
  let dominating =
    Array.init classes (fun i ->
        Graphs.Domination.is_dominating g (fun v -> st.member.(i).(v)))
  in
  {
    Cds_packing.vg;
    classes;
    class_of;
    members;
    connected;
    dominating;
    stats =
      {
        Cds_packing.excess_after_layer = List.rev !stats_excess;
        matched_per_layer = List.rev !stats_matched;
        bridging_edges_per_layer = [];
      };
  }

let pack ?seed g ~k =
  run ?seed g
    ~classes:(Cds_packing.default_classes ~k)
    ~layers:(Cds_packing.default_layers ~n:(Graph.n g))
