module Graph = Graphs.Graph
module Net = Congest.Net

type class_status = Healthy | Repaired | Dropped

type t = {
  r_memberships : int list array;
  r_status : class_status array;
  r_retained : int list;
  r_dropped : int list;
  r_orphans : int;
  r_splices : int;
  r_rounds : int;
}

let ceil_lg n =
  int_of_float (ceil (log (float_of_int (max 2 n)) /. log 2.))

let pp ppf t =
  let count s = Array.fold_left (fun a x -> if x = s then a + 1 else a) 0 t.r_status in
  Format.fprintf ppf
    "repair: %d/%d classes retained (%d healthy, %d repaired, %d dropped), \
     %d orphan join(s), %d splice(s), %d round(s)"
    (List.length t.r_retained)
    (Array.length t.r_status)
    (count Healthy) (count Repaired) (count Dropped) t.r_orphans t.r_splices
    t.r_rounds

(* Sanitized working state: per-node sorted unique in-range class lists,
   empty on dead nodes. *)
let sanitize ~live n ~memberships ~classes =
  Array.init n (fun r ->
      if live r then
        List.sort_uniq compare
          (List.filter (fun i -> i >= 0 && i < classes) (memberships r))
      else [])

let live_member_counts mem ~classes =
  let counts = Array.make classes 0 in
  Array.iter
    (fun ls -> List.iter (fun i -> counts.(i) <- counts.(i) + 1) ls)
    mem;
  counts

(* The simultaneous-bridge join rule, shared verbatim by both variants.
   [nc.(i).(x)]: sorted distinct fragment ids of class [i] that live
   non-member [x] sees at distance 1 (empty when none, or when [x] is a
   member / dead / the class is inactive). [relayed.(i).(x)]: nearest
   fragment ids relayed by adjacent live non-members. A vertex joins
   class [i] iff it touches a fragment directly and its combined view
   names two distinct fragments — covering length-2 bridges (two
   fragments in the direct view) and length-3 bridges (each endpoint
   relays a different nearest fragment to the other). *)
let joins_of ~classes ~n nc relayed =
  let joins = ref [] in
  for i = classes - 1 downto 0 do
    for x = n - 1 downto 0 do
      match nc.(i).(x) with
      | [] -> ()
      | direct ->
        let view = List.sort_uniq compare (direct @ relayed.(i).(x)) in
        if List.length view >= 2 then joins := (x, i) :: !joins
    done
  done;
  !joins

let finalize mem ~classes ~dropped ~touched ~orphans ~splices ~rounds =
  let n = Array.length mem in
  let final =
    Array.init n (fun r -> List.filter (fun i -> not dropped.(i)) mem.(r))
  in
  let status =
    Array.init classes (fun i ->
        if dropped.(i) then Dropped
        else if touched.(i) then Repaired
        else Healthy)
  in
  let retained = ref [] in
  let dropped_l = ref [] in
  for i = classes - 1 downto 0 do
    if dropped.(i) then dropped_l := i :: !dropped_l
    else retained := i :: !retained
  done;
  {
    r_memberships = final;
    r_status = status;
    r_retained = !retained;
    r_dropped = !dropped_l;
    r_orphans = orphans;
    r_splices = splices;
    r_rounds = rounds;
  }

(* ------------------------------------------------------------------ *)
(* Centralized repair *)

let run_centralized ?(live = fun _ -> true) g ~memberships ~classes =
  let n = Graph.n g in
  let mem = sanitize ~live n ~memberships ~classes in
  let dropped = Array.make classes false in
  let touched = Array.make classes false in
  let orphans = ref 0 in
  let splices = ref 0 in
  (* 1. extinction: no surviving member, nothing to splice *)
  let counts = live_member_counts mem ~classes in
  Array.iteri (fun i c -> if c = 0 then dropped.(i) <- true) counts;
  let member_matrix () =
    let m = Array.make_matrix classes n false in
    Array.iteri
      (fun r ls -> List.iter (fun i -> m.(i).(r) <- true) ls)
      mem;
    m
  in
  (* 2. domination fix: orphaned nodes reassign themselves *)
  let in_class = member_matrix () in
  for r = 0 to n - 1 do
    if live r then
      for i = 0 to classes - 1 do
        if
          (not dropped.(i))
          && (not in_class.(i).(r))
          && not (Array.exists (fun u -> in_class.(i).(u)) (Graph.neighbors g r))
        then begin
          mem.(r) <- List.sort_uniq compare (i :: mem.(r));
          incr orphans;
          touched.(i) <- true
        end
      done
  done;
  (* 3. splice loop: all bridges fire simultaneously, Boruvka-style *)
  let max_iter = ceil_lg n + 2 in
  let comps in_class =
    (* fragment id = min member id, via BFS in ascending root order *)
    let comp = Array.make_matrix classes n (-1) in
    let frag = Array.make classes 0 in
    for i = 0 to classes - 1 do
      if not dropped.(i) then
        for r = 0 to n - 1 do
          if in_class.(i).(r) && comp.(i).(r) < 0 then begin
            frag.(i) <- frag.(i) + 1;
            let q = Queue.create () in
            comp.(i).(r) <- r;
            Queue.add r q;
            while not (Queue.is_empty q) do
              let u = Queue.pop q in
              Array.iter
                (fun v ->
                  if in_class.(i).(v) && comp.(i).(v) < 0 then begin
                    comp.(i).(v) <- r;
                    Queue.add v q
                  end)
                (Graph.neighbors g u)
            done
          end
        done
    done;
    (comp, frag)
  in
  let active frag =
    let a = ref [] in
    for i = classes - 1 downto 0 do
      if (not dropped.(i)) && frag.(i) > 1 then a := i :: !a
    done;
    !a
  in
  let rec splice iter =
    let in_class = member_matrix () in
    let comp, frag = comps in_class in
    match active frag with
    | [] -> ()
    | act ->
      if iter >= max_iter then List.iter (fun i -> dropped.(i) <- true) act
      else begin
        (* radius-1 view *)
        let nc = Array.make_matrix classes n [] in
        for x = 0 to n - 1 do
          if live x then
            for i = 0 to classes - 1 do
              if (not dropped.(i)) && not in_class.(i).(x) then
                nc.(i).(x) <-
                  Array.fold_left
                    (fun acc u ->
                      if in_class.(i).(u) then comp.(i).(u) :: acc else acc)
                    [] (Graph.neighbors g x)
                  |> List.sort_uniq compare
            done
        done;
        (* relays: nearest fragment id, one hop further *)
        let relayed = Array.make_matrix classes n [] in
        for x = 0 to n - 1 do
          if live x then
            for i = 0 to classes - 1 do
              if (not dropped.(i)) && not in_class.(i).(x) then
                relayed.(i).(x) <-
                  Array.fold_left
                    (fun acc y ->
                      if live y && not in_class.(i).(y) then
                        match nc.(i).(y) with
                        | [] -> acc
                        | c :: _ -> c :: acc
                      else acc)
                    [] (Graph.neighbors g x)
                  |> List.sort_uniq compare
            done
        done;
        match joins_of ~classes ~n nc relayed with
        | [] -> List.iter (fun i -> dropped.(i) <- true) act
        | joins ->
          List.iter
            (fun (x, i) ->
              mem.(x) <- List.sort_uniq compare (i :: mem.(x));
              incr splices;
              touched.(i) <- true)
            joins;
          splice (iter + 1)
      end
  in
  splice 0;
  finalize mem ~classes ~dropped ~touched ~orphans:!orphans ~splices:!splices
    ~rounds:0

(* ------------------------------------------------------------------ *)
(* Distributed repair: the same decision rules, driven by delivered
   CONGEST traffic (so rounds are charged and faults during repair are
   felt), in the repository's simulation idiom — global arrays fed only
   by messages the runtime actually delivered. *)

let run_distributed ?live net ~memberships ~classes =
  let n = Net.n net in
  let live = match live with Some f -> f | None -> Net.node_alive net in
  let cp = Net.checkpoint net in
  let mem = sanitize ~live n ~memberships ~classes in
  let dropped = Array.make classes false in
  let touched = Array.make classes false in
  let orphans = ref 0 in
  let splices = ref 0 in
  (* diameter bound for the final dropped-class dissemination flood *)
  let tree = Congest.Primitives.bfs_tree net ~root:0 in
  let d_bound = max 1 (2 * tree.Congest.Primitives.height) in
  (* 1. extinction *)
  let counts = live_member_counts mem ~classes in
  Array.iteri (fun i c -> if c = 0 then dropped.(i) <- true) counts;
  let memfn r = mem.(r) in
  (* 2. domination fix off one membership sweep *)
  let received =
    Multiflood.membership_sweep net ~memberships:memfn ~payload:(fun _ _ -> [])
  in
  for r = 0 to n - 1 do
    if live r then begin
      let seen = Array.make classes false in
      List.iter (fun i -> seen.(i) <- true) mem.(r);
      List.iter (fun (_, i, _) -> if i >= 0 && i < classes then seen.(i) <- true)
        received.(r);
      for i = 0 to classes - 1 do
        if (not dropped.(i)) && not seen.(i) then begin
          mem.(r) <- List.sort_uniq compare (i :: mem.(r));
          incr orphans;
          touched.(i) <- true
        end
      done
    end
  done;
  (* 3. splice loop *)
  let max_iter = ceil_lg n + 2 in
  let rec splice iter =
    (* per-class fragment identification on the virtual graph *)
    let cids = Multiflood.flood_min net ~memberships:memfn ~init:(fun r _ -> (r, r)) in
    let cid r i =
      match Hashtbl.find_opt cids (r, i) with Some (c, _) -> c | None -> r
    in
    let frag = Array.make classes 0 in
    let seen_frag = Array.init classes (fun _ -> Hashtbl.create 8) in
    Array.iteri
      (fun r ls ->
        List.iter
          (fun i ->
            let c = cid r i in
            if not (Hashtbl.mem seen_frag.(i) c) then begin
              Hashtbl.replace seen_frag.(i) c ();
              frag.(i) <- frag.(i) + 1
            end)
          ls)
      mem;
    let act = ref [] in
    for i = classes - 1 downto 0 do
      if (not dropped.(i)) && frag.(i) > 1 then act := i :: !act
    done;
    match !act with
    | [] -> ()
    | act ->
      if iter >= max_iter then List.iter (fun i -> dropped.(i) <- true) act
      else begin
        (* sweep 1: members announce their fragment id *)
        let announced =
          Multiflood.membership_sweep net ~memberships:memfn
            ~payload:(fun r i -> [ cid r i ])
        in
        let nc = Array.make_matrix classes n [] in
        let member = Array.make_matrix classes n false in
        Array.iteri
          (fun r ls -> List.iter (fun i -> member.(i).(r) <- true) ls)
          mem;
        for x = 0 to n - 1 do
          if live x then
            List.iter
              (fun (_, i, payload) ->
                match payload with
                | [ c ] when i >= 0 && i < classes && not member.(i).(x) ->
                  nc.(i).(x) <- c :: nc.(i).(x)
                | _ -> ())
              announced.(x)
        done;
        Array.iter
          (fun row ->
            Array.iteri (fun x cs -> row.(x) <- List.sort_uniq compare cs) row)
          nc;
        (* sweep 2: non-members relay their nearest fragment id *)
        let relayfn x =
          if not (live x) then []
          else begin
            let cs = ref [] in
            for i = classes - 1 downto 0 do
              if (not dropped.(i)) && (not member.(i).(x)) && nc.(i).(x) <> []
              then cs := i :: !cs
            done;
            !cs
          end
        in
        let relays =
          Multiflood.membership_sweep net ~memberships:relayfn
            ~payload:(fun x i -> [ List.hd nc.(i).(x) ])
        in
        let relayed = Array.make_matrix classes n [] in
        for x = 0 to n - 1 do
          if live x then
            List.iter
              (fun (_, i, payload) ->
                match payload with
                | [ c ] when i >= 0 && i < classes && not member.(i).(x) ->
                  relayed.(i).(x) <- c :: relayed.(i).(x)
                | _ -> ())
              relays.(x)
        done;
        Array.iter
          (fun row ->
            Array.iteri (fun x cs -> row.(x) <- List.sort_uniq compare cs) row)
          relayed;
        match joins_of ~classes ~n nc relayed with
        | [] -> List.iter (fun i -> dropped.(i) <- true) act
        | joins ->
          List.iter
            (fun (x, i) ->
              mem.(x) <- List.sort_uniq compare (i :: mem.(x));
              incr splices;
              touched.(i) <- true)
            joins;
          splice (iter + 1)
      end
  in
  splice 0;
  (* 4. dropped-class dissemination: Θ(D) flood, as the tester's
        failure flag *)
  if Array.exists (fun b -> b) dropped then
    ignore (Congest.Primitives.flood_min net ~value:(fun r -> r) ~rounds:d_bound);
  finalize mem ~classes ~dropped ~touched ~orphans:!orphans ~splices:!splices
    ~rounds:(Net.rounds_since net cp)
