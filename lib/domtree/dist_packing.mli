(** Distributed implementation of the fractional dominating-tree packing
    (Theorem 1.1, Appendix B), executed over the V-CONGEST runtime.

    Every step of Appendix B is realized with explicit message passing
    on the base graph, simulating the virtual graph by meta-rounds:

    - B.1 component identification of old nodes: per-class min-id
      flooding over intra-class virtual edges ({!Multiflood}, the
      Theorem B.2 interface);
    - B.2 bridging-graph creation: type-1 "connector" declarations and
      component deactivation, type-3 witness messages, local neighbor
      lists at type-2 nodes;
    - B.3 maximal matching: Luby-style proposal stages — random values,
      component-wide maximum by intra-component flooding, accept
      announcements — for O(log n) stages.

    The returned record is the same shape as the centralized one; the
    [connected]/[dominating]/[stats] fields are filled in by (free)
    post-hoc verification. Round/congestion costs are read off the
    {!Congest.Net} counters by the caller. *)

(** [run ?seed ?jumpstart net ~classes ~layers] executes the distributed
    packing on [net] (a V-CONGEST or E-CONGEST network). *)
val run :
  ?seed:int ->
  ?jumpstart:int ->
  Congest.Net.t ->
  classes:int ->
  layers:int ->
  Cds_packing.t

(** [pack ?seed net ~k] uses the default parameters of {!Cds_packing}. *)
val pack : ?seed:int -> Congest.Net.t -> k:int -> Cds_packing.t

(** [extract_trees net result] is the B.4 wrap-up, distributed: spans
    every valid class with a tree via the distributed MST restricted to
    the class's members (the paper gives weight 0 to intra-class virtual
    edges and runs one MST on the virtual graph; here the per-class runs
    execute sequentially on the runtime, an upper bound on that cost).
    Returns the same fractional packing {!Tree_extract.of_cds_packing}
    builds centrally. *)
val extract_trees : Congest.Net.t -> Cds_packing.t -> Packing.t

(** Number of matching stages per layer, Θ(log n). *)
val matching_stages : n:int -> int
