(* SARIF 2.1.0 emission for congest-lint findings, plus the minimal
   JSON layer shared with the baseline store.

   The report is the machine-readable artifact CI uploads
   (_build/default/lint_report.sarif): one run, one rule descriptor per
   rule id, one result per finding, with [baselineState] carrying the
   --baseline verdict ("unchanged" = tracked historical finding, "new" =
   fails the build). Only the schema subset congest-lint needs is
   emitted — tool.driver with rules, results with ruleId / level /
   message / one physical location each. *)

(* ------------------------------------------------------------------ *)
(* JSON: a writer and a recursive-descent reader. The reader exists so
   the baseline file and the test suite's schema smoke need no external
   dependency; it accepts exactly the JSON this module writes (objects,
   arrays, strings with \-escapes, ints/floats, bools, null). *)

module Json = struct
  type t =
    | Null
    | Bool of bool
    | Num of float
    | Str of string
    | Arr of t list
    | Obj of (string * t) list

  let escape s =
    let b = Buffer.create (String.length s + 8) in
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string b "\\\""
        | '\\' -> Buffer.add_string b "\\\\"
        | '\n' -> Buffer.add_string b "\\n"
        | '\r' -> Buffer.add_string b "\\r"
        | '\t' -> Buffer.add_string b "\\t"
        | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char b c)
      s;
    Buffer.contents b

  let rec write b = function
    | Null -> Buffer.add_string b "null"
    | Bool v -> Buffer.add_string b (if v then "true" else "false")
    | Num f ->
      if Float.is_integer f && Float.abs f < 1e15 then
        Buffer.add_string b (Printf.sprintf "%.0f" f)
      else Buffer.add_string b (Printf.sprintf "%.17g" f)
    | Str s ->
      Buffer.add_char b '"';
      Buffer.add_string b (escape s);
      Buffer.add_char b '"'
    | Arr xs ->
      Buffer.add_char b '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_char b ',';
          write b x)
        xs;
      Buffer.add_char b ']'
    | Obj kvs ->
      Buffer.add_char b '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char b ',';
          write b (Str k);
          Buffer.add_char b ':';
          write b v)
        kvs;
      Buffer.add_char b '}'

  let to_string j =
    let b = Buffer.create 4096 in
    write b j;
    Buffer.contents b

  exception Parse_error of string

  let parse (s : string) : t =
    let n = String.length s in
    let pos = ref 0 in
    let fail msg = raise (Parse_error (Printf.sprintf "%s at %d" msg !pos)) in
    let peek () = if !pos < n then Some s.[!pos] else None in
    let advance () = incr pos in
    let rec skip_ws () =
      match peek () with
      | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
      | _ -> ()
    in
    let expect c =
      if peek () = Some c then advance ()
      else fail (Printf.sprintf "expected %c" c)
    in
    let literal word v =
      if !pos + String.length word <= n
         && String.sub s !pos (String.length word) = word
      then begin
        pos := !pos + String.length word;
        v
      end
      else fail ("expected " ^ word)
    in
    let string_lit () =
      expect '"';
      let b = Buffer.create 16 in
      let rec go () =
        if !pos >= n then fail "unterminated string"
        else
          let c = s.[!pos] in
          advance ();
          match c with
          | '"' -> Buffer.contents b
          | '\\' -> (
            if !pos >= n then fail "unterminated escape"
            else
              let e = s.[!pos] in
              advance ();
              match e with
              | '"' | '\\' | '/' ->
                Buffer.add_char b e;
                go ()
              | 'n' ->
                Buffer.add_char b '\n';
                go ()
              | 't' ->
                Buffer.add_char b '\t';
                go ()
              | 'r' ->
                Buffer.add_char b '\r';
                go ()
              | 'b' ->
                Buffer.add_char b '\b';
                go ()
              | 'f' ->
                Buffer.add_char b '\012';
                go ()
              | 'u' ->
                if !pos + 4 > n then fail "bad \\u escape"
                else begin
                  let hex = String.sub s !pos 4 in
                  pos := !pos + 4;
                  let code =
                    try int_of_string ("0x" ^ hex)
                    with _ -> fail "bad \\u escape"
                  in
                  (* BMP only; enough for our own output *)
                  if code < 0x80 then Buffer.add_char b (Char.chr code)
                  else if code < 0x800 then begin
                    Buffer.add_char b (Char.chr (0xC0 lor (code lsr 6)));
                    Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
                  end
                  else begin
                    Buffer.add_char b (Char.chr (0xE0 lor (code lsr 12)));
                    Buffer.add_char b
                      (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
                    Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
                  end;
                  go ()
                end
              | _ -> fail "bad escape")
          | c ->
            Buffer.add_char b c;
            go ()
      in
      go ()
    in
    let number () =
      let start = !pos in
      let num_char c =
        (c >= '0' && c <= '9')
        || c = '-' || c = '+' || c = '.' || c = 'e' || c = 'E'
      in
      while !pos < n && num_char s.[!pos] do
        advance ()
      done;
      if !pos = start then fail "expected number"
      else
        match float_of_string_opt (String.sub s start (!pos - start)) with
        | Some f -> Num f
        | None -> fail "bad number"
    in
    let rec value () =
      skip_ws ();
      match peek () with
      | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else
          let rec members acc =
            skip_ws ();
            let k = string_lit () in
            skip_ws ();
            expect ':';
            let v = value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
              advance ();
              members ((k, v) :: acc)
            | Some '}' ->
              advance ();
              Obj (List.rev ((k, v) :: acc))
            | _ -> fail "expected , or }"
          in
          members []
      | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          Arr []
        end
        else
          let rec elements acc =
            let v = value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
              advance ();
              elements (v :: acc)
            | Some ']' ->
              advance ();
              Arr (List.rev (v :: acc))
            | _ -> fail "expected , or ]"
          in
          elements []
      | Some '"' -> Str (string_lit ())
      | Some 't' -> literal "true" (Bool true)
      | Some 'f' -> literal "false" (Bool false)
      | Some 'n' -> literal "null" Null
      | Some _ -> number ()
      | None -> fail "unexpected end of input"
    in
    let v = value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v

  let member k = function Obj kvs -> List.assoc_opt k kvs | _ -> None
  let as_string = function Str s -> Some s | _ -> None
  let as_list = function Arr xs -> Some xs | _ -> None

  let as_int = function
    | Num f when Float.is_integer f -> Some (int_of_float f)
    | _ -> None
end

(* ------------------------------------------------------------------ *)
(* SARIF *)

let version = "0.2"
let schema = "https://json.schemastore.org/sarif-2.1.0.json"

(* [report ~rules ~baseline_state findings] is the SARIF document.
   [baseline_state f] classifies each finding ("new" / "unchanged");
   pass [fun _ -> None] when no baseline is in play. *)
let report ~rules ~baseline_state findings =
  let rule_descriptor (id, desc) =
    Json.Obj
      [
        ("id", Json.Str id);
        ("shortDescription", Json.Obj [ ("text", Json.Str desc) ]);
      ]
  in
  let result (f : Lint_core.finding) =
    let base =
      [
        ("ruleId", Json.Str f.Lint_core.rule);
        ("level", Json.Str "error");
        ("message", Json.Obj [ ("text", Json.Str f.Lint_core.message) ]);
        ( "locations",
          Json.Arr
            [
              Json.Obj
                [
                  ( "physicalLocation",
                    Json.Obj
                      [
                        ( "artifactLocation",
                          Json.Obj
                            [
                              ("uri", Json.Str f.Lint_core.file);
                              ("uriBaseId", Json.Str "SRCROOT");
                            ] );
                        ( "region",
                          Json.Obj
                            [
                              ("startLine", Json.Num (float_of_int f.Lint_core.line));
                              ( "startColumn",
                                Json.Num (float_of_int (f.Lint_core.col + 1)) );
                            ] );
                      ] );
                ];
            ] );
      ]
    in
    match baseline_state f with
    | Some state -> Json.Obj (base @ [ ("baselineState", Json.Str state) ])
    | None -> Json.Obj base
  in
  Json.Obj
    [
      ("$schema", Json.Str schema);
      ("version", Json.Str "2.1.0");
      ( "runs",
        Json.Arr
          [
            Json.Obj
              [
                ( "tool",
                  Json.Obj
                    [
                      ( "driver",
                        Json.Obj
                          [
                            ("name", Json.Str "congest-lint");
                            ("version", Json.Str version);
                            ( "informationUri",
                              Json.Str
                                "https://github.com/connectivity-decomposition \
                                 (tool/lint, DESIGN.md section 12)" );
                            ("rules", Json.Arr (List.map rule_descriptor rules));
                          ] );
                    ] );
                ("results", Json.Arr (List.map result findings));
              ];
          ] );
    ]

let write_file path ~rules ~baseline_state findings =
  let doc = report ~rules ~baseline_state findings in
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      output_string oc (Json.to_string doc);
      output_char oc '\n')
