(* Typedtree half of congest-lint: rules that fire on what code *means*.

   The parsetree rules in Lint_core see spellings — [Random.int] is
   caught, [module R = Random let _ = R.int] is not. This module loads
   the compiler's typed AST (from the .cmt files dune already emits
   under -bin-annot) and resolves every identifier through [Path.t], so
   aliasing, [open], and module re-exports cannot hide a banned
   effect. On that foundation it adds the two rule families a parsetree
   cannot express at all:

   [domain-race] — cross-domain shared-mutable-state analysis. A
   closure passed to [Domain.spawn], [Exec.Pool.run] or [Exec.Job.make]
   runs on another domain while the spawning domain retains every value
   it captures. The detector walks such closures (following let-bound
   local functions they call, e.g. a [worker] loop defined beside the
   spawn), classifies each mutation's target against a three-point
   lattice

       local          allocated inside the walked region: domain-private
       captured       bound outside the region: visible to >= 2 domains
       module-state   resolved to a module-level value ([Path.Pdot])

   and flags every captured/module-state write that is not covered by
   the two sanctioned disciplines: [Atomic.*] operations, and
   index-slot stores ([a.(i) <- e] where the index involves a variable
   — the Pool's "distinct indices, distinct slots" contract; a
   *constant* index is a guaranteed collision and is flagged). A second,
   interprocedural pass builds a call graph over every top-level
   definition in the loaded units and re-applies the same write
   classification to each definition reachable from a spawn closure, so
   a module-state write hidden three calls deep is still caught.
   Known limitation (documented in DESIGN.md §12): a captured mutable
   value that is only *passed onward* as an argument is not tracked
   through the callee's parameter — state threading through parameters
   is the repository's sanctioned single-domain idiom, and flagging it
   would drown the signal.

   [msg-budget] — the model's O(log n)-word message bound, statically.
   [Net.broadcast_round]/[Net.edge_round] enforce
   [Model.words_budget] at runtime; this rule rejects at lint time the
   constructions that can only be caught at runtime on an unlucky
   input: inside a send closure, building a message via
   [Array.of_list]/[of_seq]/[append]/[concat] (width = data-dependent),
   [Array.make]/[init]/[sub] with a non-constant width, or an [[| .. |]]
   literal wider than the budget. A bounded encoding (fixed-size
   chunking à la [Routing.Coding]) earns a "lint: allow msg-budget"
   whose justification must cite the Model bound (audited by
   [Lint_core.apply_allows]).

   The typed ports of the L1/L3/L4/L5 rules (nondet-random/clock/hash,
   hashtbl-order, obj-magic, physical-eq, domain-spawn,
   polymorphic-compare) subsume their parsetree twins on any file with
   .cmt coverage; the driver keeps only [silenced-warning],
   [global-mutable-state] and [parse-error] from the parsetree pass
   there. *)

type finding = Lint_core.finding

(* compiler-libs keeps [Ident.t] abstract; [Ident.unique_name] ("name_stamp")
   is the stable per-binding-occurrence key we hash on. *)
let stamp (id : Ident.t) = Ident.unique_name id

(* Must track Model.words_budget (lib/congest/model.ml): the static
   bound a message literal may not exceed. *)
let words_budget = 8

(* ------------------------------------------------------------------ *)
(* Canonical names: Path.t -> dotted segments, resolved through local
   module aliases, with dune's Lib__Module mangling flattened and the
   [Stdlib] root dropped. Local *value* identifiers never produce a
   global name — [Some ["compare"]] is always [Stdlib.compare], never a
   parameter that happens to share the spelling. *)

module SMap = Map.Make (String)

let split_unit name =
  (* "Congest__Net" -> ["Congest"; "Net"]; "Congest__" -> ["Congest"] *)
  let rec go acc i j =
    if j + 1 >= String.length name then
      List.rev (String.sub name i (String.length name - i) :: acc)
    else if name.[j] = '_' && name.[j + 1] = '_' then
      go (String.sub name i (j - i) :: acc) (j + 2) (j + 2)
    else go acc i (j + 1)
  in
  go [] 0 0 |> List.filter (fun s -> s <> "")

let rec path_segs = function
  | Path.Pident id -> Some [ Ident.name id ]
  | Path.Pdot (p, s) -> (
    match path_segs p with Some l -> Some (l @ [ s ]) | None -> None)
  | Path.Papply _ -> None
  | Path.Pextra_ty (p, _) -> path_segs p

let is_module_name s = s <> "" && s.[0] >= 'A' && s.[0] <= 'Z'

(* [global_name aliases p] is the canonical dotted name of [p] when [p]
   is rooted in a compilation unit or module — [None] for local value
   identifiers (parameters, lets), whose meaning is positional, not
   nominal. *)
let global_name aliases p =
  match path_segs p with
  | None | Some [] -> None
  | Some (head :: rest) ->
    if (not (is_module_name head)) && rest = [] then None
    else
      let rec resolve seen head rest =
        match SMap.find_opt head aliases with
        | Some target when not (List.mem head seen) -> (
          match target with
          | th :: tr -> resolve (head :: seen) th (tr @ rest)
          | [] -> split_unit head @ rest)
        | _ -> split_unit head @ rest
      in
      let segs = resolve [] head rest in
      Some (match segs with "Stdlib" :: (_ :: _ as r) -> r | r -> r)

let dotted = String.concat "."

(* ------------------------------------------------------------------ *)
(* Shared helpers over typedtree expressions *)

let pos_of_loc (loc : Location.t) =
  let p = loc.Location.loc_start in
  (p.Lexing.pos_lnum, p.Lexing.pos_cnum - p.Lexing.pos_bol)

let pos_of (e : Typedtree.expression) = pos_of_loc e.exp_loc

let positional args =
  List.filter_map (function _, Some e -> Some e | _ -> None) args

let head_name aliases (f : Typedtree.expression) =
  match f.Typedtree.exp_desc with
  | Texp_ident (p, _, _) -> global_name aliases p
  | _ -> None

(* The mutable root an lvalue-ish expression reaches through field and
   element projections: [state.arr.(i) <- v] mutates [state]. *)
let rec root_ident aliases (e : Typedtree.expression) =
  match e.exp_desc with
  | Texp_ident (p, _, _) -> Some p
  | Texp_field (e, _, _) -> root_ident aliases e
  | Texp_apply (f, args) -> (
    match (head_name aliases f, positional args) with
    | Some [ ("Array" | "Bytes"); ("get" | "unsafe_get") ], base :: _ ->
      root_ident aliases base
    | _ -> None)
  | _ -> None

let rec expr_mentions_ident (e : Typedtree.expression) =
  match e.exp_desc with
  | Texp_ident _ -> true
  | Texp_field (e, _, _) -> expr_mentions_ident e
  | Texp_apply (f, args) ->
    expr_mentions_ident f
    || List.exists expr_mentions_ident (positional args)
  | Texp_constant _ -> false
  | _ ->
    (* anything structured: assume a variable is involved (conservative
       toward *not* flagging; only all-constant indices are collisions
       we can prove) *)
    true

let int_constant (e : Typedtree.expression) =
  match e.exp_desc with
  | Texp_constant (Const_int k) -> Some k
  | _ -> None

(* msg-typed: [int array], or a nominal type spelled [..Net.msg] *)
let rec is_msg_type (ty : Types.type_expr) =
  match Types.get_desc ty with
  | Tconstr (p, args, _) -> (
    match (path_segs p, args) with
    | Some [ "array" ], [ elt ] -> (
      match Types.get_desc elt with
      | Tconstr (pi, [], _) -> path_segs pi = Some [ "int" ]
      | _ -> false)
    | Some segs, _ -> (
      match List.rev segs with
      | "msg" :: "Net" :: _ -> true
      | _ -> false)
    | None, _ -> false)
  | Tlink ty | Tsubst (ty, _) -> is_msg_type ty
  | _ -> false

(* ------------------------------------------------------------------ *)
(* Binder collection: every Ident bound *inside* a region. Ident stamps
   are globally unique per binding occurrence, so a grow-only set over
   the whole region is exact — an identifier bound anywhere in the
   region is region-local, everything else is captured from outside. *)

let region_binders (root : Typedtree.expression) =
  let stamps = Hashtbl.create 64 in
  let add id = Hashtbl.replace stamps (stamp id) () in
  let add_case :
      type k. k Typedtree.case -> unit =
   fun c -> List.iter add (Typedtree.pat_bound_idents c.Typedtree.c_lhs)
  in
  let expr it (e : Typedtree.expression) =
    (match e.exp_desc with
    | Texp_let (_, vbs, _) ->
      List.iter
        (fun (vb : Typedtree.value_binding) ->
          List.iter add (Typedtree.pat_bound_idents vb.vb_pat))
        vbs
    | Texp_function { cases; _ } -> List.iter add_case cases
    | Texp_match (_, cases, _) -> List.iter add_case cases
    | Texp_try (_, cases) -> List.iter add_case cases
    | Texp_for (id, _, _, _, _, _) -> add id
    | Texp_letop { body; _ } -> add_case body
    | _ -> ());
    Tast_iterator.default_iterator.expr it e
  in
  let it = { Tast_iterator.default_iterator with expr } in
  it.expr it root;
  fun id -> Hashtbl.mem stamps (stamp id)

(* Let-bound local functions of a region, so a spawn closure's call to
   a sibling [worker] loop is followed onto the spawned domain. *)
let local_lambdas (root : Typedtree.expression) =
  let tbl = Hashtbl.create 16 in
  let expr it (e : Typedtree.expression) =
    (match e.exp_desc with
    | Texp_let (_, vbs, _) ->
      List.iter
        (fun (vb : Typedtree.value_binding) ->
          match (vb.vb_pat.pat_desc, vb.vb_expr.exp_desc) with
          | Tpat_var (id, _), Texp_function _ ->
            Hashtbl.replace tbl (stamp id) vb.vb_expr
          | _ -> ())
        vbs
    | _ -> ());
    Tast_iterator.default_iterator.expr it e
  in
  let it = { Tast_iterator.default_iterator with expr } in
  it.expr it root;
  tbl

(* ------------------------------------------------------------------ *)
(* Mutation events *)

type mutation = {
  m_loc : Location.t;
  m_what : string;  (** human description: "(:=) on hits", ... *)
  m_target : Path.t;
  m_slotted : bool;  (** Array/Bytes store whose index involves a var *)
}

let container_mutators =
  [
    ("Hashtbl", [ "add"; "replace"; "remove"; "reset"; "clear";
                  "filter_map_inplace" ]);
    ("Buffer", [ "add_char"; "add_string"; "add_bytes"; "add_subbytes";
                 "add_substring"; "add_buffer"; "add_channel"; "clear";
                 "reset"; "truncate" ]);
    ("Queue", [ "add"; "push"; "pop"; "take"; "clear" ]);
  ]

(* [mutation_of aliases e] classifies expression [e] as a mutation
   event, [None] otherwise. Atomic.* operations are the sanctioned
   cross-domain primitive and are never events. *)
let mutation_of aliases (e : Typedtree.expression) =
  let mk ?(slotted = false) what target =
    Some { m_loc = e.exp_loc; m_what = what; m_target = target; m_slotted = slotted }
  in
  let target_of what args k =
    match List.nth_opt (positional args) k with
    | Some t -> (
      match root_ident aliases t with
      | Some p -> mk what p
      | None -> None)
    | None -> None
  in
  match e.exp_desc with
  | Texp_setfield (lhs, _, lbl, _) -> (
    match root_ident aliases lhs with
    | Some p -> mk (Printf.sprintf "mutable-field write (%s)" lbl.lbl_name) p
    | None -> None)
  | Texp_apply (f, args) -> (
    match head_name aliases f with
    | Some [ ":=" ] -> target_of "(:=)" args 0
    | Some [ ("incr" | "decr") as op ] -> target_of (Printf.sprintf "(%s)" op) args 0
    | Some [ ("Array" | "Bytes"); ("set" | "unsafe_set") ] -> (
      match positional args with
      | base :: idx :: _ -> (
        match root_ident aliases base with
        | Some p ->
          mk ~slotted:(expr_mentions_ident idx) "element store" p
        | None -> None)
      | _ -> None)
    | Some [ ("Array" | "Bytes"); "fill" ] -> target_of "fill" args 0
    | Some [ ("Array" | "Bytes"); "blit" ] -> target_of "blit" args 2
    | Some [ "Bytes"; "blit_string" ] -> target_of "blit" args 2
    | Some [ "Stack"; ("push") ] -> target_of "Stack.push" args 1
    | Some [ "Stack"; ("pop" | "clear") ] -> target_of "Stack mutation" args 0
    | Some [ "Queue"; "transfer" ] -> target_of "Queue.transfer" args 1
    | Some [ m; f ] -> (
      match List.assoc_opt m container_mutators with
      | Some fns when List.mem f fns ->
        target_of (Printf.sprintf "%s.%s" m f) args 0
      | _ -> None)
    | _ -> None)
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Per-unit analysis *)

type def = {
  d_name : string;  (** canonical, e.g. "Congest.Net.broadcast_round" *)
  d_refs : string list;  (** canonical names referenced in the body *)
  d_candidates : finding list;
      (** non-local writes, pre-built as findings; emitted only when the
          def turns out to be reachable from a spawn closure *)
}

type unit_info = {
  u_file : string;
  u_findings : finding list;  (** typed-rule findings local to the unit *)
  u_defs : def list;
  u_roots : string list;  (** names referenced from spawn closures *)
}

let spawn_heads = [ [ "Domain"; "spawn" ] ]

(* entry points whose closure argument executes on pool domains; the
   int is the positional index of that argument (-1 = last) *)
let pool_entries =
  [ ([ "Pool"; "run" ], 0); ([ "Exec"; "Pool"; "run" ], 0);
    ([ "Job"; "make" ], -1); ([ "Exec"; "Job"; "make" ], -1);
    (* the sharded round engine's team: the shard body (last unlabelled
       argument) runs on worker domains. The labelled ~main thunk stays
       on the caller and is deliberately not walked. *)
    ([ "Team"; "run" ], -1); ([ "Congest"; "Team"; "run" ], -1) ]

let order_normalizer = function
  | [ "List"; ("sort" | "sort_uniq" | "stable_sort" | "fast_sort" | "length") ]
    -> true
  | _ -> false

type ctx = {
  file : string;
  aliases : string list SMap.t;
  (* stamp of a unit-toplevel value -> its canonical name *)
  toplevel : (string, string) Hashtbl.t;
  mutable findings : finding list;
  mutable roots : string list;
}

let report ctx loc rule message =
  let line, col = pos_of_loc loc in
  ctx.findings <-
    { Lint_core.file = ctx.file; line; col; rule; message } :: ctx.findings

(* --- the race walk over one region ------------------------------- *)

(* Walks [region] as code running on a spawned domain: classifies every
   mutation event against the local/captured/module-state lattice,
   follows let-bound local functions from [lambdas], and feeds every
   global reference to [on_ref] (the cross-unit reachability roots). *)
let race_walk ctx ~lambdas ~on_ref region =
  let visited = Hashtbl.create 8 in
  (* [outer] accumulates binders across followed local lambdas: a let
     from the enclosing region is still region-local inside a sibling
     [worker] body — both run on the same spawned domain. *)
  let rec walk ~outer region =
    let own = region_binders region in
    let bound id = own id || outer id in
    let classify p =
      match p with
      | Path.Pident id ->
        if bound id then `Local
        else if Hashtbl.mem ctx.toplevel (stamp id) then
          `Module (Hashtbl.find ctx.toplevel (stamp id))
        else `Captured (Ident.name id)
      | _ -> (
        match global_name ctx.aliases p with
        | Some segs -> `Module (dotted segs)
        | None -> `Captured (Path.name p))
    in
    let expr it (e : Typedtree.expression) =
      (match mutation_of ctx.aliases e with
      | Some m when not m.m_slotted -> (
        match classify m.m_target with
        | `Local -> ()
        | `Captured name ->
          report ctx m.m_loc "domain-race"
            (Printf.sprintf
               "%s on [%s], captured from outside this Domain.spawn/pool \
                closure: the spawning domain still sees it. Use an \
                Atomic, give each domain its own slot (a.(i) <- with a \
                per-domain index), or allocate the state inside the \
                closure"
               m.m_what name)
        | `Module name ->
          report ctx m.m_loc "domain-race"
            (Printf.sprintf
               "%s on module-level state [%s] from code running on a \
                spawned domain; every domain of the pool shares this \
                binding" m.m_what name))
      | _ -> ());
      (match e.exp_desc with
      | Texp_ident (p, _, _) -> (
        match global_name ctx.aliases p with
        | Some segs -> on_ref (dotted segs)
        | None -> (
          match p with
          | Path.Pident id -> (
            if Hashtbl.mem ctx.toplevel (stamp id) then
              on_ref (Hashtbl.find ctx.toplevel (stamp id))
            else
              match Hashtbl.find_opt lambdas (stamp id) with
              | Some body when not (Hashtbl.mem visited (stamp id)) ->
                Hashtbl.replace visited (stamp id) ();
                walk ~outer:bound body
              | _ -> ())
          | _ -> ()))
      | _ -> ());
      Tast_iterator.default_iterator.expr it e
    in
    let it = { Tast_iterator.default_iterator with expr } in
    it.expr it region
  in
  walk ~outer:(fun _ -> false) region

(* --- message-budget walk over a send closure ---------------------- *)

let budget_walk ctx region =
  let expr it (e : Typedtree.expression) =
    (match e.exp_desc with
    | Texp_array es
      when List.length es > words_budget && is_msg_type e.exp_type ->
      report ctx e.exp_loc "msg-budget"
        (Printf.sprintf
           "message literal of %d words exceeds Model.words_budget (%d): \
            messages are O(log n) bits total" (List.length es) words_budget)
    | Texp_apply (f, args) when is_msg_type e.exp_type -> (
      match head_name ctx.aliases f with
      | Some [ "Array"; (("of_list" | "of_seq" | "append" | "concat") as fn) ]
        ->
        report ctx e.exp_loc "msg-budget"
          (Printf.sprintf
             "Array.%s builds a message whose width is data-dependent — \
              nothing bounds it by Model.words_budget. Chunk the payload \
              into fixed-width words (see Routing.Coding) or justify the \
              bound with a lint: allow msg-budget citing the Model" fn)
      | Some [ "Array"; (("make" | "init") as fn) ] -> (
        match positional args with
        | len :: _ -> (
          match int_constant len with
          | Some k when k <= words_budget -> ()
          | Some k ->
            report ctx e.exp_loc "msg-budget"
              (Printf.sprintf
                 "Array.%s %d builds a message wider than \
                  Model.words_budget (%d)" fn k words_budget)
          | None ->
            report ctx e.exp_loc "msg-budget"
              (Printf.sprintf
                 "Array.%s with a non-constant width builds a message \
                  with no static bound against Model.words_budget" fn))
        | [] -> ())
      | Some [ "Array"; "sub" ] -> (
        match positional args with
        | [ _; _; len ] -> (
          match int_constant len with
          | Some k when k <= words_budget -> ()
          | _ ->
            report ctx e.exp_loc "msg-budget"
              "Array.sub with a non-constant (or over-budget) width \
               builds a message with no static bound against \
               Model.words_budget")
        | _ -> ())
      | _ -> ())
    | _ -> ());
    Tast_iterator.default_iterator.expr it e
  in
  let it = { Tast_iterator.default_iterator with expr } in
  it.expr it region

(* --- typed ports of the parsetree rules ---------------------------- *)

let typed_rules_walk ctx root =
  (* Hashtbl.fold/iter already wrapped in an order normalizer, keyed by
     source position (mirrors the parsetree sanctioning). *)
  let sanctioned = Hashtbl.create 16 in
  let is_hashtbl_iteration (e : Typedtree.expression) =
    match e.exp_desc with
    | Texp_apply (f, _) -> (
      match head_name ctx.aliases f with
      | Some [ "Hashtbl"; ("fold" | "iter") ] -> true
      | _ -> false)
    | _ -> false
  in
  let sanction arg =
    if is_hashtbl_iteration arg then Hashtbl.replace sanctioned (pos_of arg) ()
  in
  let structured_operand (e : Typedtree.expression) =
    match e.exp_desc with
    | Texp_tuple _ | Texp_array _ | Texp_record _ -> true
    | Texp_construct (_, cd, args) -> cd.cstr_arity > 0 && args <> []
    | Texp_variant (_, Some _) -> true
    | _ -> false
  in
  let ident_rule loc = function
    | [ "Obj"; _ ] ->
      report ctx loc "obj-magic" "Obj.* breaks abstraction and type soundness"
    | [ ("==" | "!=") as op ] ->
      report ctx loc "physical-eq"
        (Printf.sprintf
           "(%s) is physical equality; use structural (=)/(<>) or annotate \
            why identity is intended" op)
    | [ "Random"; sub ] when sub <> "State" ->
      report ctx loc "nondet-random"
        (Printf.sprintf
           "Random.%s draws from the global PRNG; thread an explicit seeded \
            Random.State.t instead" sub)
    | [ "Sys"; ("time" | "getenv" | "getenv_opt") ] | "Unix" :: _ ->
      report ctx loc "nondet-clock"
        "wall-clock/environment reads make runs irreproducible"
    | [ "Hashtbl"; ("hash" | "seeded_hash") ] ->
      report ctx loc "nondet-hash"
        "polymorphic Hashtbl.hash is not canonical across representations; \
         hash an explicit canonical key"
    | [ "Domain"; "spawn" ] ->
      report ctx loc "domain-spawn"
        "Domain.spawn here breaks the single-domain determinism of the \
         simulator; dispatch whole jobs through the lib/exec pool instead"
    | [ "compare" ] ->
      report ctx loc "polymorphic-compare"
        "bare [compare] dispatches to caml_compare per element; use a \
         monomorphic comparator (Int.compare, Float.compare, List.compare \
         Int.compare, ...)"
    | _ -> ()
  in
  let expr it (e : Typedtree.expression) =
    (match e.exp_desc with
    | Texp_ident (p, _, _) -> (
      match global_name ctx.aliases p with
      | Some segs -> ident_rule e.exp_loc segs
      | None -> ())
    | Texp_apply (f, args) -> (
      (* The typechecker rewrites [x |> f a] into [(f a) x] — the pipe
         never survives into the typedtree — so the sanctioning only
         needs the application-spine head: [List.sort cmp (fold ...)] and
         [fold ... |> List.sort cmp] both put an order normalizer at the
         spine root with the iteration as last argument. *)
      let rec spine_head (f : Typedtree.expression) =
        match f.exp_desc with
        | Texp_apply (g, _) -> spine_head g
        | _ -> head_name ctx.aliases f
      in
      (match spine_head f with
      | Some p when order_normalizer p -> (
        match List.rev (positional args) with
        | last :: _ -> sanction last
        | [] -> ())
      | _ -> ());
      match head_name ctx.aliases f with
      | Some [ "Hashtbl"; (("fold" | "iter") as fn) ]
        when not (Hashtbl.mem sanctioned (pos_of e)) ->
        report ctx e.exp_loc "hashtbl-order"
          (Printf.sprintf
             "Hashtbl.%s iteration order can leak into messages or \
              results; sort the output (List.sort) or justify with a \
              lint: allow" fn)
      | Some [ (("=" | "<>" | "<" | ">" | "<=" | ">=") as op) ]
        when List.exists structured_operand (positional args) ->
        report ctx e.exp_loc "polymorphic-compare"
          (Printf.sprintf
             "(%s) on a structured operand is polymorphic comparison; \
              compare the fields monomorphically instead" op)
      | _ -> ())
    | _ -> ());
    Tast_iterator.default_iterator.expr it e
  in
  let it = { Tast_iterator.default_iterator with expr } in
  it.expr it root

(* --- spawn-site discovery ------------------------------------------ *)

let spawn_sites_walk ctx ~lambdas root =
  let expr it (e : Typedtree.expression) =
    (match e.exp_desc with
    | Texp_apply (f, args) -> (
      match head_name ctx.aliases f with
      | Some segs ->
        let last2 = match List.rev segs with b :: a :: _ -> [ a; b ] | l -> List.rev l in
        (* entry indices count unlabelled arguments only: labelled
           extras (~jobs:2) must not shift the closure's position *)
        let unlabelled =
          List.filter_map
            (function Asttypes.Nolabel, Some e -> Some e | _ -> None)
            args
        in
        let closure_arg =
          if List.mem segs spawn_heads || last2 = [ "Domain"; "spawn" ] then
            List.nth_opt unlabelled 0
          else
            List.find_map
              (fun (entry, k) ->
                if segs = entry || last2 = entry then
                  if k = -1 then List.nth_opt (List.rev unlabelled) 0
                  else List.nth_opt unlabelled k
                else None)
              pool_entries
        in
        (match closure_arg with
        | Some arg ->
          race_walk ctx ~lambdas
            ~on_ref:(fun name -> ctx.roots <- name :: ctx.roots)
            arg
        | None -> ())
      | None -> ())
    | _ -> ());
    Tast_iterator.default_iterator.expr it e
  in
  let it = { Tast_iterator.default_iterator with expr } in
  it.expr it root

(* --- send-closure discovery for the budget rule -------------------- *)

let round_entries = [ [ "Net"; "broadcast_round" ]; [ "Net"; "edge_round" ] ]

let budget_sites_walk ctx ~lambdas root =
  let expr it (e : Typedtree.expression) =
    (match e.exp_desc with
    | Texp_apply (f, args) -> (
      match head_name ctx.aliases f with
      | Some segs ->
        let last2 =
          match List.rev segs with b :: a :: _ -> [ a; b ] | l -> List.rev l
        in
        if List.mem last2 round_entries then
          let send =
            match List.rev (positional args) with s :: _ -> Some s | [] -> None
          in
          (match send with
          | Some ({ exp_desc = Texp_function _; _ } as s) -> budget_walk ctx s
          | Some { exp_desc = Texp_ident (Path.Pident id, _, _); _ } -> (
            match Hashtbl.find_opt lambdas (stamp id) with
            | Some body -> budget_walk ctx body
            | None -> ())
          | _ -> ())
      | None -> ())
    | _ -> ());
    Tast_iterator.default_iterator.expr it e
  in
  let it = { Tast_iterator.default_iterator with expr } in
  it.expr it root

(* --- structure traversal ------------------------------------------- *)

let rec collect_aliases prefix aliases (str : Typedtree.structure) =
  List.fold_left
    (fun aliases (item : Typedtree.structure_item) ->
      match item.str_desc with
      | Tstr_module mb -> (
        let rec target (me : Typedtree.module_expr) =
          match me.mod_desc with
          | Tmod_ident (p, _) -> path_segs p
          | Tmod_constraint (me, _, _, _) -> target me
          | _ -> None
        in
        match (mb.mb_id, target mb.mb_expr) with
        | Some id, Some segs -> SMap.add (Ident.name id) segs aliases
        | Some _, None -> (
          match mb.mb_expr.mod_desc with
          | Tmod_structure s ->
            collect_aliases (prefix @ [ Ident.name (Option.get mb.mb_id) ])
              aliases s
          | _ -> aliases)
        | None, _ -> aliases)
      | _ -> aliases)
    aliases str.str_items

(* Top-level value definitions (recursing into plain nested modules):
   [(canonical name, ident option, body)] in source order. *)
let rec collect_defs prefix (str : Typedtree.structure) =
  List.concat_map
    (fun (item : Typedtree.structure_item) ->
      match item.str_desc with
      | Tstr_value (_, vbs) ->
        List.map
          (fun (vb : Typedtree.value_binding) ->
            let name, id =
              match vb.vb_pat.pat_desc with
              | Tpat_var (id, _) -> (Ident.name id, Some id)
              | _ -> ("$pattern", None)
            in
            (dotted (prefix @ [ name ]), id, vb.vb_expr))
          vbs
      | Tstr_eval (e, _) -> [ (dotted (prefix @ [ "$init" ]), None, e) ]
      | Tstr_module
          { mb_id = Some id; mb_expr = { mod_desc = Tmod_structure s; _ }; _ }
        ->
        collect_defs (prefix @ [ Ident.name id ]) s
      | _ -> [])
    str.str_items

(* all global references in an expression, for call-graph edges *)
let collect_refs ctx root =
  let refs = Hashtbl.create 32 in
  let expr it (e : Typedtree.expression) =
    (match e.exp_desc with
    | Texp_ident (p, _, _) -> (
      match global_name ctx.aliases p with
      | Some segs -> Hashtbl.replace refs (dotted segs) ()
      | None -> (
        match p with
        | Path.Pident id -> (
          match Hashtbl.find_opt ctx.toplevel (stamp id) with
          | Some name -> Hashtbl.replace refs name ()
          | None -> ())
        | _ -> ()))
    | _ -> ());
    Tast_iterator.default_iterator.expr it e
  in
  let it = { Tast_iterator.default_iterator with expr } in
  it.expr it root;
  Hashtbl.fold (fun k () acc -> k :: acc) refs [] |> List.sort String.compare

let analyze_unit ~file ~modname (str : Typedtree.structure) =
  let prefix = split_unit modname in
  let aliases = collect_aliases prefix SMap.empty str in
  let defs_raw = collect_defs prefix str in
  let toplevel = Hashtbl.create 32 in
  List.iter
    (fun (name, id, _) ->
      match id with
      | Some id -> Hashtbl.replace toplevel (stamp id) name
      | None -> ())
    defs_raw;
  let ctx = { file; aliases; toplevel; findings = []; roots = [] } in
  (* unit-wide typed ports + spawn/budget sites *)
  let defs =
    List.map
      (fun (name, _, body) ->
        typed_rules_walk ctx body;
        let lambdas = local_lambdas body in
        spawn_sites_walk ctx ~lambdas body;
        budget_sites_walk ctx ~lambdas body;
        (* candidate non-local writes, kept aside for reachability *)
        let saved = ctx.findings in
        ctx.findings <- [];
        race_walk ctx ~lambdas ~on_ref:(fun _ -> ()) body;
        let candidates =
          List.map
            (fun (f : finding) ->
              { f with
                Lint_core.message =
                  f.Lint_core.message
                  ^ Printf.sprintf " [in %s, reachable from a spawn closure]"
                      name })
            ctx.findings
        in
        ctx.findings <- saved;
        { d_name = name; d_refs = collect_refs ctx body; d_candidates = candidates })
      defs_raw
  in
  {
    u_file = file;
    u_findings = List.rev ctx.findings;
    u_defs = defs;
    u_roots = List.sort_uniq String.compare ctx.roots;
  }

(* ------------------------------------------------------------------ *)
(* Cross-unit reachability: emit the candidate non-local writes of every
   definition reachable from some spawn closure. *)

let cross_findings units =
  let defs = Hashtbl.create 256 in
  List.iter
    (fun u -> List.iter (fun d -> Hashtbl.replace defs d.d_name d) u.u_defs)
    units;
  let reachable = Hashtbl.create 64 in
  let rec visit name =
    if not (Hashtbl.mem reachable name) then begin
      Hashtbl.replace reachable name ();
      match Hashtbl.find_opt defs name with
      | Some d -> List.iter visit d.d_refs
      | None -> ()
    end
  in
  List.iter (fun u -> List.iter visit u.u_roots) units;
  let out = ref [] in
  List.iter
    (fun u ->
      List.iter
        (fun d ->
          if Hashtbl.mem reachable d.d_name then
            out := List.rev_append d.d_candidates !out)
        u.u_defs)
    units;
  List.sort Lint_core.compare_findings !out

(* ------------------------------------------------------------------ *)
(* Loading .cmt files *)

let read_cmt path =
  match Cmt_format.read_cmt path with
  | exception _ -> None
  | cmt -> (
    match (cmt.Cmt_format.cmt_annots, cmt.Cmt_format.cmt_sourcefile) with
    | Cmt_format.Implementation str, Some source ->
      Some (source, cmt.Cmt_format.cmt_modname, str)
    | _ -> None)

(* ------------------------------------------------------------------ *)
(* In-process typechecking for test fixtures: parse + type a source
   string against the stdlib, then run the typed rules exactly as the
   driver would on a .cmt. *)

let fixture_env =
  lazy
    (Compmisc.init_path ();
     Compmisc.initial_env ())

let fixture_findings ?(file = "fixture.ml") source =
  let env = Lazy.force fixture_env in
  match
    let lexbuf = Lexing.from_string source in
    Lexing.set_filename lexbuf file;
    let pstr = Parse.implementation lexbuf in
    let tstr, _, _, _, _ = Typemod.type_structure env pstr in
    tstr
  with
  | exception exn ->
    let line, col =
      match Location.error_of_exn exn with
      | Some (`Ok err) -> pos_of_loc err.Location.main.loc
      | _ -> (1, 0)
    in
    [ { Lint_core.file; line; col; rule = "typecheck-error";
        message = Printexc.to_string exn } ]
  | tstr ->
    let u = analyze_unit ~file ~modname:"Fixture" tstr in
    List.sort Lint_core.compare_findings (u.u_findings @ cross_findings [ u ])
