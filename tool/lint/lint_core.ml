(* congest-lint: static model-compliance analysis over the repository's
   own OCaml sources.

   The CONGEST simulator enforces bandwidth, but it cannot enforce the
   locality discipline or seed-determinism of protocol code (see
   lib/congest/net.mli). These rules close that gap mechanically by
   rejecting the source-level patterns through which nondeterminism and
   non-local state leak into algorithm behaviour:

   L1 — nondeterminism sinks:
     [nondet-random]   global Random state (Random.int, Random.self_init,
                       ...) instead of a threaded Random.State.t
     [nondet-clock]    wall-clock / environment reads (Sys.time, Unix)
     [nondet-hash]     polymorphic Hashtbl.hash on non-canonical data
     [hashtbl-order]   Hashtbl.fold/iter whose iteration order can leak
                       into messages or results (exempt when the result
                       is immediately order-normalized by List.sort /
                       List.sort_uniq / List.length)
   L2 — locality hazards:
     [global-mutable-state]  ref / Array.make / Hashtbl.create / ... bound
                       at module toplevel: shared mutable state that node
                       closures can read without a message
   L3 — soundness hazards:
     [obj-magic]       any Obj.* use
     [physical-eq]     == / != on values that are not known to be
                       physically canonical
     [silenced-warning] [@warning "-..."] / [@@@warning "-..."] attributes
   L4 — parallelism containment:
     [domain-spawn]    Domain.spawn anywhere but the lib/exec pool: the
                       CONGEST simulator and every protocol layer must
                       stay single-domain deterministic; multicore
                       sharding happens one whole simulation per domain,
                       never inside one
   L5 — hot-path hygiene (enforced in lib/graph and lib/congest only,
        via the driver's scope restriction):
     [polymorphic-compare]  bare [compare] passed as a comparator, or a
                       comparison operator applied to a syntactically
                       structured operand (tuple/array/record/construct
                       literal): each lands in [caml_compare], which
                       boxes the hot path the CSR core exists to
                       flatten. Use Int.compare, Float.compare,
                       List.compare, or field-wise monomorphic
                       comparisons.

   Escape hatch: a comment of the form "lint: allow <rule> — reason" on
   the finding's line or up to three lines above suppresses it. The
   suppression auditor holds every allow to account: an allow that
   suppresses nothing is reported ([unused-allow]) so stale annotations
   cannot accumulate, an allow with no justification text after the rule
   name is reported ([bare-allow]), and a [msg-budget] allow must anchor
   its justification in the model ("Model" must appear in the reason —
   the bound being claimed is Model.words_budget, so say why the
   encoding meets it). Likewise a [domain-spawn]/[domain-race] allow
   inside lib/congest must cite the shard-merge determinism boundary
   ("shard-merge" must appear — the sharded round engine's byte-for-byte
   determinism argument, DESIGN.md §15). Subsystems whose whole purpose is an
   otherwise-forbidden effect (lib/exec: domains and the wall clock) get
   a scoped exemption via [check_file]'s [?exempt] instead of per-line
   allows — the scope, not each line, is what is justified.

   This module is the parsetree half of the analyzer; Typed_lint is the
   typedtree half (identifier resolution through Path.t, the
   cross-domain race detector and the message-budget checker). The
   driver (congest_lint.ml) runs both and applies allows to the merged
   finding set. *)

type finding = {
  file : string;
  line : int;
  col : int;
  rule : string;
  message : string;
}

let rules =
  [
    ("nondet-random", "global Random state instead of a threaded Random.State.t");
    ("nondet-clock", "wall clock / environment read (Sys.time, Unix.*)");
    ("nondet-hash", "polymorphic Hashtbl.hash on non-canonical data");
    ("hashtbl-order", "Hashtbl.fold/iter order can leak into messages");
    ("global-mutable-state", "mutable state bound at module toplevel");
    ("obj-magic", "Obj.* breaks type soundness");
    ("physical-eq", "physical equality on structural data");
    ("silenced-warning", "warning silenced by attribute");
    ("domain-spawn", "Domain.spawn outside the lib/exec pool");
    ("polymorphic-compare", "polymorphic compare on non-immediate data");
    ("domain-race", "shared mutable state written across domains");
    ("msg-budget", "message construction exceeds the O(log n)-word budget");
    ("unused-allow", "lint: allow annotation suppresses no finding");
    ("bare-allow", "lint: allow annotation carries no justification");
    ("parse-error", "source file does not parse");
    ("typecheck-error", "source file does not typecheck");
  ]

let compare_findings a b =
  compare (a.file, a.line, a.col, a.rule) (b.file, b.line, b.col, b.rule)

let contains_substring ~sub s =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let pp_finding ppf f =
  Format.fprintf ppf "%s:%d:%d: [%s] %s" f.file f.line f.col f.rule f.message

(* ------------------------------------------------------------------ *)
(* Allow-comment scanning (comments are invisible to the parsetree) *)

let is_rule_char c = (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') || c = '-'

type allow = {
  a_line : int;
  a_rule : string;
  a_reason : string;
      (** justification text on the allow's own line, with the usual
          "— " / "-- " separator stripped; [""] = bare allow *)
}

(* Every "lint: allow <rule> [— reason]" occurrence. The reason is
   whatever follows the rule name on the same line (multi-line
   justifications count through their first line), minus separator
   dashes and a trailing comment close. *)
let scan_allows source =
  let marker = "lint: allow" in
  let allows = ref [] in
  let line = ref 1 in
  let n = String.length source in
  let mlen = String.length marker in
  for i = 0 to n - 1 do
    if source.[i] = '\n' then incr line
    else if i + mlen <= n && String.sub source i mlen = marker then begin
      let j = ref (i + mlen) in
      while !j < n && source.[!j] = ' ' do incr j done;
      let start = !j in
      while !j < n && is_rule_char source.[!j] do incr j done;
      if !j > start then begin
        let rule = String.sub source start (!j - start) in
        (* the justification runs to the close of the enclosing comment
           (allows live in (* .. *) blocks, which may span lines); fall
           back to end-of-line if no close is found *)
        let stop = ref !j in
        while
          !stop < n
          && not (source.[!stop] = '*' && !stop + 1 < n && source.[!stop + 1] = ')')
        do
          incr stop
        done;
        let stop = if !stop < n then !stop else min n !j in
        let stop =
          if stop > !j then stop
          else begin
            let eol = ref !j in
            while !eol < n && source.[!eol] <> '\n' do incr eol done;
            !eol
          end
        in
        let rest = String.sub source !j (stop - !j) in
        (* strip separator dashes (ASCII and em-dash) and whitespace,
           then judge emptiness *)
        let reason =
          String.to_seq rest
          |> Seq.filter (fun c ->
                 not
                   (c = ' ' || c = '\t' || c = '\n' || c = '\r' || c = '-'
                   (* em-dash bytes *)
                   || c = '\xe2' || c = '\x80' || c = '\x94' || c = '\x93'))
          |> String.of_seq
        in
        let reason = if reason = "" then "" else String.trim rest in
        (* anchor suppression on the line the comment closes: the
           finding must sit within three lines of the comment's end, not
           of the marker buried at its top *)
        let close_line =
          !line
          + String.fold_left
              (fun acc c -> if c = '\n' then acc + 1 else acc)
              0 rest
        in
        allows := { a_line = close_line; a_rule = rule; a_reason = reason } :: !allows
      end
    end
  done;
  List.rev !allows

(* ------------------------------------------------------------------ *)
(* Parsetree rules *)

let rec longident_path = function
  | Longident.Lident s -> [ s ]
  | Longident.Ldot (l, s) -> longident_path l @ [ s ]
  | Longident.Lapply _ -> []

let ident_path (e : Parsetree.expression) =
  match e.pexp_desc with
  | Pexp_ident { txt; _ } -> Some (longident_path txt)
  | _ -> None

let pos_of (e : Parsetree.expression) =
  let p = e.pexp_loc.Location.loc_start in
  (p.Lexing.pos_lnum, p.Lexing.pos_cnum - p.Lexing.pos_bol)

(* Modules whose [create]-style results are mutable containers: binding
   one at module toplevel is shared mutable state across node closures. *)
let mutable_maker = function
  | [ "ref" ] -> true
  | [ ("Array" | "Stdlib.Array"); ("make" | "create_float" | "init") ] -> true
  | [ ("Bytes" | "Stdlib.Bytes"); ("make" | "create") ] -> true
  | [ ("Hashtbl" | "Stdlib.Hashtbl"); "create" ] -> true
  | [ ("Buffer" | "Stdlib.Buffer"); "create" ] -> true
  | [ ("Queue" | "Stdlib.Queue"); "create" ] -> true
  | [ ("Stack" | "Stdlib.Stack"); "create" ] -> true
  | [ ("Atomic" | "Stdlib.Atomic"); "make" ] -> true
  | _ -> false

(* Operands whose comparison via (=)/(<)/... is certain to dispatch to
   [caml_compare] over a block: literal tuples, arrays, records, and
   payload-carrying constructors/variants. Constant constructors ([None],
   [V_congest]) and scalar literals are deliberately not flagged — the
   compiler specializes comparisons whose operand type it knows, and a
   typed literal pins the type — and plain identifiers are not flagged
   because their type is invisible to a parsetree pass. *)
let rec structured_operand (e : Parsetree.expression) =
  match e.pexp_desc with
  | Pexp_tuple _ | Pexp_array _ | Pexp_record _ -> true
  | Pexp_construct (_, Some _) | Pexp_variant (_, Some _) -> true
  | Pexp_constraint (e, _) -> structured_operand e
  | _ -> false

let check_structure ~file source =
  let findings = ref [] in
  let report (line, col) rule message =
    findings := { file; line; col; rule; message } :: !findings
  in
  let lexbuf = Lexing.from_string source in
  Lexing.set_filename lexbuf file;
  match Parse.implementation lexbuf with
  | exception exn ->
    let line, col =
      match Location.error_of_exn exn with
      | Some (`Ok err) ->
        let p = err.Location.main.loc.Location.loc_start in
        (p.Lexing.pos_lnum, p.Lexing.pos_cnum - p.Lexing.pos_bol)
      | _ -> (1, 0)
    in
    [ { file; line; col; rule = "parse-error"; message = Printexc.to_string exn } ]
  | structure ->
    (* Hashtbl.fold/iter applications already wrapped in an order
       normalizer, keyed by their start position. *)
    let sanctioned = Hashtbl.create 16 in
    let order_normalizer = function
      | [ ("List" | "Stdlib.List"); ("sort" | "sort_uniq" | "stable_sort"
        | "fast_sort" | "length") ] -> true
      | _ -> false
    in
    let is_hashtbl_iteration e =
      match e.Parsetree.pexp_desc with
      | Pexp_apply (f, _) -> (
        match ident_path f with
        | Some [ ("Hashtbl" | "Stdlib.Hashtbl"); ("fold" | "iter") ] -> true
        | _ -> false)
      | _ -> false
    in
    let expr_rule (e : Parsetree.expression) =
      match e.pexp_desc with
      | Pexp_ident { txt; _ } -> (
        match longident_path txt with
        | "Obj" :: _ | "Stdlib" :: "Obj" :: _ ->
          report (pos_of e) "obj-magic"
            "Obj.* breaks abstraction and type soundness"
        | [ ("==" | "!=") as op ] ->
          report (pos_of e) "physical-eq"
            (Printf.sprintf
               "(%s) is physical equality; use structural (=)/(<>) or \
                annotate why identity is intended" op)
        | [ "Random"; sub ] when sub <> "State" ->
          report (pos_of e) "nondet-random"
            (Printf.sprintf
               "Random.%s draws from the global PRNG; thread an explicit \
                seeded Random.State.t instead" sub)
        | [ "Sys"; ("time" | "getenv" | "getenv_opt") ]
        | "Unix" :: _ ->
          report (pos_of e) "nondet-clock"
            "wall-clock/environment reads make runs irreproducible"
        | [ ("Hashtbl" | "Stdlib.Hashtbl"); ("hash" | "seeded_hash") ] ->
          report (pos_of e) "nondet-hash"
            "polymorphic Hashtbl.hash is not canonical across \
             representations; hash an explicit canonical key"
        | [ "Domain"; "spawn" ] | [ "Stdlib"; "Domain"; "spawn" ] ->
          report (pos_of e) "domain-spawn"
            "Domain.spawn here breaks the single-domain determinism of \
             the simulator; dispatch whole jobs through the lib/exec \
             pool instead"
        | [ "compare" ] | [ ("Stdlib" | "Pervasives"); "compare" ] ->
          report (pos_of e) "polymorphic-compare"
            "bare [compare] dispatches to caml_compare per element; use \
             a monomorphic comparator (Int.compare, Float.compare, \
             List.compare Int.compare, ...)"
        | _ -> ())
      | Pexp_apply (f, args) -> (
        (* Sanction `List.sort cmp (Hashtbl.fold ...)` and
           `Hashtbl.fold ... |> List.sort cmp` (and the List.length
           cardinality idiom) before the inner application is visited. *)
        let sanction arg =
          if is_hashtbl_iteration arg then
            Hashtbl.replace sanctioned (pos_of arg) ()
        in
        (match ident_path f with
        | Some [ "|>" ] -> (
          match args with
          | [ (_, lhs); (_, rhs) ] -> (
            let head =
              match rhs.pexp_desc with
              | Pexp_apply (g, _) -> ident_path g
              | Pexp_ident _ -> ident_path rhs
              | _ -> None
            in
            match head with
            | Some p when order_normalizer p -> sanction lhs
            | _ -> ())
          | _ -> ())
        | Some p when order_normalizer p -> (
          match List.rev args with
          | (_, last) :: _ -> sanction last
          | [] -> ())
        | _ -> ());
        match ident_path f with
        | Some [ ("Hashtbl" | "Stdlib.Hashtbl"); (("fold" | "iter") as fn) ]
          when not (Hashtbl.mem sanctioned (pos_of e)) ->
          report (pos_of e) "hashtbl-order"
            (Printf.sprintf
               "Hashtbl.%s iteration order can leak into messages or \
                results; sort the output (List.sort) or justify with a \
                lint: allow" fn)
        | Some [ (("=" | "<>" | "<" | ">" | "<=" | ">=") as op) ]
          when List.exists (fun (_, a) -> structured_operand a) args ->
          report (pos_of e) "polymorphic-compare"
            (Printf.sprintf
               "(%s) on a structured operand is polymorphic comparison; \
                compare the fields monomorphically instead" op)
        | _ -> ())
      | _ -> ()
    in
    let attribute_rule (a : Parsetree.attribute) =
      match a.attr_name.txt with
      | "warning" | "ocaml.warning" | "warnerror" | "ocaml.warnerror" -> (
        match a.attr_payload with
        | PStr
            [ { pstr_desc =
                  Pstr_eval
                    ( { pexp_desc = Pexp_constant (Pconst_string (s, _, _)); _ },
                      _ );
                _ } ]
          when String.contains s '-' ->
          let p = a.attr_name.loc.Location.loc_start in
          report
            (p.Lexing.pos_lnum, p.Lexing.pos_cnum - p.Lexing.pos_bol)
            "silenced-warning"
            (Printf.sprintf
               "attribute silences warnings (%S); fix the code or justify \
                with a lint: allow" s)
        | _ -> ())
      | _ -> ()
    in
    (* Toplevel mutable bindings, recursing through nested modules but
       not into expressions (function-local state is fine). *)
    let rec structure_rule (str : Parsetree.structure) =
      List.iter
        (fun (item : Parsetree.structure_item) ->
          match item.pstr_desc with
          | Pstr_value (_, vbs) ->
            List.iter
              (fun (vb : Parsetree.value_binding) ->
                match vb.pvb_expr.pexp_desc with
                | Pexp_apply (f, _) -> (
                  match ident_path f with
                  | Some p when mutable_maker p ->
                    report (pos_of vb.pvb_expr) "global-mutable-state"
                      (Printf.sprintf
                         "%s at module toplevel is shared mutable state; \
                          allocate it inside the function or protocol \
                          closure that owns it"
                         (String.concat "." p))
                  | _ -> ())
                | _ -> ())
              vbs
          | Pstr_module
              { pmb_expr = { pmod_desc = Pmod_structure s; _ }; _ } ->
            structure_rule s
          | Pstr_recmodule mbs ->
            List.iter
              (fun (mb : Parsetree.module_binding) ->
                match mb.pmb_expr.pmod_desc with
                | Pmod_structure s -> structure_rule s
                | _ -> ())
              mbs
          | _ -> ())
        str
    in
    structure_rule structure;
    let iter =
      {
        Ast_iterator.default_iterator with
        expr =
          (fun it e ->
            expr_rule e;
            Ast_iterator.default_iterator.expr it e);
        attribute =
          (fun it a ->
            attribute_rule a;
            Ast_iterator.default_iterator.attribute it a);
      }
    in
    iter.structure iter structure;
    List.rev !findings

(* ------------------------------------------------------------------ *)
(* Allow application *)

let apply_allows ~file ~allows findings =
  let used = Hashtbl.create 8 in
  (* the nearest allow at or above the finding (within three lines) wins,
     so stacked allow/finding pairs resolve one-to-one *)
  let suppressed_by f =
    List.filter
      (fun a -> a.a_rule = f.rule && f.line - a.a_line >= 0 && f.line - a.a_line <= 3)
      allows
    |> List.fold_left
         (fun best a ->
           match best with
           | Some b when b.a_line >= a.a_line -> best
           | _ -> Some a)
         None
  in
  let kept =
    List.filter
      (fun f ->
        match suppressed_by f with
        | Some a ->
          Hashtbl.replace used (a.a_line, a.a_rule) ();
          false
        | None -> true)
      findings
  in
  let audit =
    List.concat_map
      (fun a ->
        let unused =
          if Hashtbl.mem used (a.a_line, a.a_rule) then []
          else
            [ {
                file;
                line = a.a_line;
                col = 0;
                rule = "unused-allow";
                message =
                  Printf.sprintf
                    "allow for rule %S suppresses no finding within three \
                     lines below; remove it" a.a_rule;
              } ]
        in
        let bare =
          if a.a_reason = "" then
            [ {
                file;
                line = a.a_line;
                col = 0;
                rule = "bare-allow";
                message =
                  Printf.sprintf
                    "allow for rule %S carries no justification; say why \
                     the finding is safe (\"lint: allow %s — reason\")"
                    a.a_rule a.a_rule;
              } ]
          else if
            a.a_rule = "msg-budget"
            && not (contains_substring ~sub:"Model" a.a_reason)
          then
            [ {
                file;
                line = a.a_line;
                col = 0;
                rule = "bare-allow";
                message =
                  "a msg-budget allow must anchor its bound in the model: \
                   cite Model.words_budget (mention \"Model\") and say why \
                   the encoding stays within it";
              } ]
          else if
            (a.a_rule = "domain-spawn" || a.a_rule = "domain-race")
            && contains_substring ~sub:"lib/congest/" file
            && not (contains_substring ~sub:"shard-merge" a.a_reason)
          then
            [ {
                file;
                line = a.a_line;
                col = 0;
                rule = "bare-allow";
                message =
                  Printf.sprintf
                    "a %s allow inside lib/congest must cite the shard-merge \
                     determinism boundary (mention \"shard-merge\"): say why \
                     shard bodies write only shard-owned slots and why the \
                     caller's shard-index-order merge keeps domains=N \
                     byte-identical to domains=1 (DESIGN.md §15)"
                    a.a_rule;
              } ]
          else if
            a.a_rule = "nondet-clock"
            && contains_substring ~sub:"lib/obs/" file
            && not (contains_substring ~sub:"metrics" a.a_reason)
          then
            [ {
                file;
                line = a.a_line;
                col = 0;
                rule = "bare-allow";
                message =
                  "a nondet-clock allow inside lib/obs must cite the \
                   metrics determinism boundary: say the timestamps are \
                   observability metrics only (mention \"metrics\") and \
                   never enter payloads or replay digests (DESIGN.md §14)";
              } ]
          else []
        in
        unused @ bare)
      allows
  in
  (kept @ audit, Hashtbl.length used)

(* [check_source ~file ?exempt source] is [(findings, suppressed_count)].
   [exempt] names rules scope-exempted for this file (e.g. lib/exec's
   domain-spawn / nondet-clock): their findings are dropped before
   allow-matching, so a scoped exemption never needs per-line allows. *)
let check_source ~file ?(exempt = []) source =
  let allows = scan_allows source in
  let raw =
    check_structure ~file source
    |> List.filter (fun f -> not (List.mem f.rule exempt))
  in
  let kept, suppressed = apply_allows ~file ~allows raw in
  (List.sort compare_findings kept, suppressed)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let check_file ?exempt path = check_source ~file:path ?exempt (read_file path)
