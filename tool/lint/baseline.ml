(* Baseline-diff mode: track the historical finding count without
   letting new findings ride in on it.

   A baseline is a JSON array of {"file", "rule", "count"} entries —
   per-(file, rule) counts rather than line numbers, so ordinary edits
   above a tracked finding do not churn the baseline. The diff
   classifies each current finding: the first [count] findings of a
   (file, rule) bucket are "unchanged" (tracked, reported, never
   failing), anything beyond is "new" (fails the build). A bucket whose
   current count dropped below the baseline is "resolved" — surfaced so
   --update-baseline ratchets the budget down. The shipped baseline
   (tool/lint/baseline.json) is empty: this tree lints clean, and the
   mechanism exists so a future true-positive burst (say, the domain
   sharding landing with known debt) can land tracked instead of
   silenced. *)

type t = (string * string, int) Hashtbl.t (* (file, rule) -> count *)

let empty () : t = Hashtbl.create 8

let load path : (t, string) result =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | exception Sys_error e -> Error e
  | text -> (
    match Sarif.Json.parse text with
    | exception Sarif.Json.Parse_error e ->
      Error (Printf.sprintf "%s: %s" path e)
    | json -> (
      match Sarif.Json.as_list json with
      | None -> Error (path ^ ": baseline must be a JSON array")
      | Some entries ->
        let t = empty () in
        let ok =
          List.for_all
            (fun entry ->
              match
                ( Option.bind (Sarif.Json.member "file" entry)
                    Sarif.Json.as_string,
                  Option.bind (Sarif.Json.member "rule" entry)
                    Sarif.Json.as_string,
                  Option.bind (Sarif.Json.member "count" entry)
                    Sarif.Json.as_int )
              with
              | Some file, Some rule, Some count when count > 0 ->
                Hashtbl.replace t (file, rule) count;
                true
              | _ -> false)
            entries
        in
        if ok then Ok t
        else Error (path ^ ": entries need file/rule/count fields")))

let save path (t : t) =
  let entries =
    Hashtbl.fold (fun (file, rule) count acc -> (file, rule, count) :: acc) t []
    |> List.sort compare
    |> List.map (fun (file, rule, count) ->
           Sarif.Json.Obj
             [
               ("file", Sarif.Json.Str file);
               ("rule", Sarif.Json.Str rule);
               ("count", Sarif.Json.Num (float_of_int count));
             ])
  in
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      output_string oc (Sarif.Json.to_string (Sarif.Json.Arr entries));
      output_char oc '\n')

let of_findings findings : t =
  let t = empty () in
  List.iter
    (fun (f : Lint_core.finding) ->
      let key = (f.Lint_core.file, f.Lint_core.rule) in
      Hashtbl.replace t key (1 + Option.value ~default:0 (Hashtbl.find_opt t key)))
    findings;
  t

type diff = {
  state : Lint_core.finding -> string;  (** "new" | "unchanged" *)
  new_count : int;
  tracked_count : int;
  resolved : (string * string * int) list;
      (** (file, rule, surplus) buckets whose findings went away *)
}

(* Findings must arrive sorted (the driver sorts); the first [count] of
   each bucket are tracked, the rest are new. *)
let diff (t : t) findings : diff =
  let seen = Hashtbl.create 16 in
  let states = Hashtbl.create 16 in
  let new_count = ref 0 and tracked = ref 0 in
  List.iter
    (fun (f : Lint_core.finding) ->
      let key = (f.Lint_core.file, f.Lint_core.rule) in
      let used = Option.value ~default:0 (Hashtbl.find_opt seen key) in
      Hashtbl.replace seen key (used + 1);
      let budget = Option.value ~default:0 (Hashtbl.find_opt t key) in
      let state = if used < budget then "unchanged" else "new" in
      if state = "new" then incr new_count else incr tracked;
      Hashtbl.replace states
        (f.Lint_core.file, f.Lint_core.rule, f.Lint_core.line, f.Lint_core.col,
         f.Lint_core.message)
        state)
    findings;
  let resolved =
    Hashtbl.fold
      (fun (file, rule) budget acc ->
        let used = Option.value ~default:0 (Hashtbl.find_opt seen (file, rule)) in
        if used < budget then (file, rule, budget - used) :: acc else acc)
      t []
    |> List.sort compare
  in
  {
    state =
      (fun f ->
        Option.value ~default:"new"
          (Hashtbl.find_opt states
             ( f.Lint_core.file, f.Lint_core.rule, f.Lint_core.line,
               f.Lint_core.col, f.Lint_core.message )));
    new_count = !new_count;
    tracked_count = !tracked;
    resolved;
  }
