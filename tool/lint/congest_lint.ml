(* Driver: walk the given files/directories, lint every .ml, print
   findings, exit non-zero when any remain. Run as `dune build @lint`. *)

(* Scoped rule exemptions. lib/exec is the experiment-execution engine:
   it is the one subsystem allowed to spawn domains (that is its job —
   the [domain-spawn] rule exists to keep Domain.spawn out of everywhere
   else) and to read the wall clock (progress/ETA/BENCH timing, which
   never feeds back into job payloads — payloads are replayed from cache
   byte-identically, so the clock cannot leak into results). Everything
   else in lib/exec (no global mutable state, no global Random, no
   Obj.magic) is held to the same rules as the simulator. *)
let scoped_exemptions =
  [
    ("lib/exec/", [ "domain-spawn"; "nondet-clock" ]);
    (* lib/serve is the I/O boundary: deadlines and retry backoff are
       wall-clock phenomena by definition. The clock never reaches the
       algorithms — it is converted to deterministic budgets (CONGEST
       rounds, retry counts) before any computation starts, which is
       exactly the DESIGN.md §11 deadline→budget mapping. *)
    ("lib/serve/", [ "nondet-clock" ]);
  ]

(* Scope-restricted rules: enforced only inside the listed directories,
   exempt everywhere else. [polymorphic-compare] is a hot-path hygiene
   rule — caml_compare in the CSR graph core or the round engine undoes
   the flat-int-array design — but in cold analysis/reporting code a
   structural compare is harmless and often clearer. *)
let scoped_only = [ ("polymorphic-compare", [ "lib/graph/"; "lib/congest/" ]) ]

let contains ~sub s =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m > 0 && go 0

let exemptions_for file =
  List.concat_map
    (fun (scope, rules) -> if contains ~sub:scope file then rules else [])
    scoped_exemptions
  @ List.filter_map
      (fun (rule, scopes) ->
        if List.exists (fun scope -> contains ~sub:scope file) scopes then None
        else Some rule)
      scoped_only

let rec gather path acc =
  if Sys.is_directory path then
    Sys.readdir path |> Array.to_list |> List.sort compare
    |> List.fold_left
         (fun acc entry ->
           if entry = "_build" || (String.length entry > 0 && entry.[0] = '.')
           then acc
           else gather (Filename.concat path entry) acc)
         acc
  else if Filename.check_suffix path ".ml" then path :: acc
  else acc

let () =
  let roots =
    match Array.to_list Sys.argv with
    | _ :: (_ :: _ as roots) -> roots
    | _ -> [ "lib"; "bin" ]
  in
  let files = List.concat_map (fun r -> List.rev (gather r [])) roots in
  if files = [] then begin
    Format.eprintf "congest-lint: no .ml files under %s@."
      (String.concat " " roots);
    exit 2
  end;
  let findings, suppressed =
    List.fold_left
      (fun (fs, sup) file ->
        let f, s = Lint_core.check_file ~exempt:(exemptions_for file) file in
        (fs @ f, sup + s))
      ([], 0) files
  in
  List.iter (Format.printf "%a@." Lint_core.pp_finding) findings;
  Format.printf
    "congest-lint: %d file(s), %d finding(s), %d suppressed by lint: allow@."
    (List.length files) (List.length findings) suppressed;
  if findings <> [] then exit 1
