(* Driver: walk the given files/directories, lint every .ml, print
   findings, exit non-zero when any remain. Run as `dune build @lint`. *)

let rec gather path acc =
  if Sys.is_directory path then
    Sys.readdir path |> Array.to_list |> List.sort compare
    |> List.fold_left
         (fun acc entry ->
           if entry = "_build" || (String.length entry > 0 && entry.[0] = '.')
           then acc
           else gather (Filename.concat path entry) acc)
         acc
  else if Filename.check_suffix path ".ml" then path :: acc
  else acc

let () =
  let roots =
    match Array.to_list Sys.argv with
    | _ :: (_ :: _ as roots) -> roots
    | _ -> [ "lib"; "bin" ]
  in
  let files = List.concat_map (fun r -> List.rev (gather r [])) roots in
  if files = [] then begin
    Format.eprintf "congest-lint: no .ml files under %s@."
      (String.concat " " roots);
    exit 2
  end;
  let findings, suppressed =
    List.fold_left
      (fun (fs, sup) file ->
        let f, s = Lint_core.check_file file in
        (fs @ f, sup + s))
      ([], 0) files
  in
  List.iter (Format.printf "%a@." Lint_core.pp_finding) findings;
  Format.printf
    "congest-lint: %d file(s), %d finding(s), %d suppressed by lint: allow@."
    (List.length files) (List.length findings) suppressed;
  if findings <> [] then exit 1
