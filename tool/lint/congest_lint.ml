(* Driver: hybrid parsetree + typedtree analysis over the repository.

   For every .ml under the given roots:

   - with .cmt coverage (dune's -bin-annot output, located under the
     --cmt-dir trees and matched by the compiler-recorded source path),
     the typedtree rules of Typed_lint carry the identifier-resolved
     rule families plus the race and message-budget detectors, and the
     parsetree pass keeps only what a typedtree cannot see (comments →
     allow auditing, attributes → silenced-warning, toplevel binding
     shapes → global-mutable-state, parse errors);
   - without coverage (executables whose .cmt dune does not install,
     e.g. bin/ and bench/main.ml), the full parsetree rule set applies
     as before — spelled-out effects are still caught, and the summary
     reports the coverage gap.

   "lint: allow" suppression is applied to the *merged* finding set per
   file, so one allow grammar serves both halves; the suppression
   auditor (unused-allow / bare-allow) rides on the merge. With
   --baseline, findings matching the baseline's per-(file, rule) budget
   are reported but do not fail the build; new ones do. --sarif writes
   the machine-readable report (always, including on failure, so CI can
   upload it). Run as `dune build @lint`. *)

(* Scoped rule exemptions. lib/exec is the experiment-execution engine:
   it is the one subsystem allowed to spawn domains (that is its job —
   the [domain-spawn] rule exists to keep Domain.spawn out of everywhere
   else) and to read the wall clock (progress/ETA/BENCH timing, which
   never feeds back into job payloads — payloads are replayed from cache
   byte-identically, so the clock cannot leak into results). Everything
   else in lib/exec (no global mutable state, no global Random, no
   Obj.magic, the race discipline on its own pool) is held to the same
   rules as the simulator. *)
let scoped_exemptions =
  [
    ("lib/exec/", [ "domain-spawn"; "nondet-clock" ]);
    (* lib/serve is the I/O boundary: deadlines and retry backoff are
       wall-clock phenomena by definition. The clock never reaches the
       algorithms — it is converted to deterministic budgets (CONGEST
       rounds, retry counts) before any computation starts, which is
       exactly the DESIGN.md §11 deadline→budget mapping. *)
    ("lib/serve/", [ "nondet-clock" ]);
    (* bench/ measures wall time — that is what a benchmark is. The
       measured numbers land in BENCH_*.json reports, never in job
       payloads (Exec.Cache replays those byte-identically), so the
       clock cannot leak into results here either. *)
    ("bench/", [ "nondet-clock" ]);
  ]

(* Scope-restricted rules: enforced only inside the listed directories,
   exempt everywhere else. [polymorphic-compare] is a hot-path hygiene
   rule — caml_compare in the CSR graph core or the round engine undoes
   the flat-int-array design — but in cold analysis/reporting code a
   structural compare is harmless and often clearer. *)
let scoped_only = [ ("polymorphic-compare", [ "lib/graph/"; "lib/congest/" ]) ]

let contains ~sub s =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m > 0 && go 0

let exemptions_for file =
  List.concat_map
    (fun (scope, rules) -> if contains ~sub:scope file then rules else [])
    scoped_exemptions
  @ List.filter_map
      (fun (rule, scopes) ->
        if List.exists (fun scope -> contains ~sub:scope file) scopes then None
        else Some rule)
      scoped_only

(* Rules whose typedtree port subsumes the parsetree version on any
   file with .cmt coverage. *)
let typed_covered =
  [
    "nondet-random"; "nondet-clock"; "nondet-hash"; "hashtbl-order";
    "obj-magic"; "physical-eq"; "domain-spawn"; "polymorphic-compare";
  ]

let rec gather_suffix ~suffix path acc =
  if Sys.is_directory path then
    Sys.readdir path |> Array.to_list |> List.sort compare
    |> List.fold_left
         (fun acc entry ->
           if entry = "_build" || (String.length entry > 0 && entry.[0] = '.')
           then acc
           else gather_suffix ~suffix (Filename.concat path entry) acc)
         acc
  else if Filename.check_suffix path suffix then path :: acc
  else acc

let usage () =
  prerr_endline
    "usage: congest_lint [--cmt-dir DIR]... [--sarif FILE] [--baseline FILE] \
     [--update-baseline] [--no-typed] [ROOT]...";
  exit 2

type options = {
  cmt_dirs : string list;
  sarif : string option;
  baseline : string option;
  update_baseline : bool;
  typed : bool;
  roots : string list;
}

let parse_args argv =
  let rec go o = function
    | [] -> o
    | "--cmt-dir" :: dir :: rest -> go { o with cmt_dirs = o.cmt_dirs @ [ dir ] } rest
    | "--sarif" :: file :: rest -> go { o with sarif = Some file } rest
    | "--baseline" :: file :: rest -> go { o with baseline = Some file } rest
    | "--update-baseline" :: rest -> go { o with update_baseline = true } rest
    | "--no-typed" :: rest -> go { o with typed = false } rest
    | arg :: _ when String.length arg > 1 && arg.[0] = '-' -> usage ()
    | root :: rest -> go { o with roots = o.roots @ [ root ] } rest
  in
  let o =
    go
      {
        cmt_dirs = [];
        sarif = None;
        baseline = None;
        update_baseline = false;
        typed = true;
        roots = [];
      }
      (List.tl (Array.to_list argv))
  in
  if o.roots = [] then { o with roots = [ "lib"; "bin"; "bench" ] } else o

let () =
  let o = parse_args Sys.argv in
  let files = List.concat_map (fun r -> List.rev (gather_suffix ~suffix:".ml" r [])) o.roots in
  if files = [] then begin
    Format.eprintf "congest-lint: no .ml files under %s@."
      (String.concat " " o.roots);
    exit 2
  end;
  (* index typedtrees by the compiler-recorded source path *)
  let units = Hashtbl.create 64 in
  if o.typed then
    List.iter
      (fun dir ->
        if Sys.file_exists dir then
          List.iter
            (fun cmt ->
              match Typed_lint.read_cmt cmt with
              | Some (source, modname, str) ->
                if not (Hashtbl.mem units source) then
                  Hashtbl.replace units source (modname, str)
              | None -> ())
            (List.rev (gather_suffix ~suffix:".cmt" dir [])))
      o.cmt_dirs;
  (* per-file: parse half + typed half, merged, then allows *)
  let analyzed =
    List.map
      (fun file ->
        let source = Lint_core.read_file file in
        let allows = Lint_core.scan_allows source in
        let parse_findings = Lint_core.check_structure ~file source in
        let covered = Hashtbl.mem units file in
        let unit_info =
          if covered then
            let modname, str = Hashtbl.find units file in
            Some (Typed_lint.analyze_unit ~file ~modname str)
          else None
        in
        let parse_kept =
          if covered then
            List.filter
              (fun (f : Lint_core.finding) ->
                not (List.mem f.Lint_core.rule typed_covered))
              parse_findings
          else parse_findings
        in
        (file, allows, parse_kept, unit_info))
      files
  in
  let infos = List.filter_map (fun (_, _, _, u) -> u) analyzed in
  let cross = Typed_lint.cross_findings infos in
  let findings, suppressed =
    List.fold_left
      (fun (acc, sup) (file, allows, parse_kept, unit_info) ->
        let typed_raw =
          match unit_info with
          | Some u -> u.Typed_lint.u_findings
          | None -> []
        in
        let cross_here =
          List.filter (fun (f : Lint_core.finding) -> f.Lint_core.file = file) cross
        in
        let exempt = exemptions_for file in
        let raw =
          parse_kept @ typed_raw @ cross_here
          |> List.filter (fun (f : Lint_core.finding) ->
                 not (List.mem f.Lint_core.rule exempt))
        in
        let kept, s = Lint_core.apply_allows ~file ~allows raw in
        (acc @ kept, sup + s))
      ([], 0) analyzed
  in
  let findings = List.sort_uniq Lint_core.compare_findings findings in
  (* baseline diff *)
  let base =
    match o.baseline with
    | Some path when Sys.file_exists path -> (
      match Baseline.load path with
      | Ok t -> t
      | Error e ->
        Format.eprintf "congest-lint: bad baseline: %s@." e;
        exit 2)
    | _ -> Baseline.empty ()
  in
  let diff = Baseline.diff base findings in
  (match (o.update_baseline, o.baseline) with
  | true, Some path ->
    Baseline.save path (Baseline.of_findings findings);
    Format.printf "congest-lint: baseline %s updated (%d finding(s))@." path
      (List.length findings)
  | true, None ->
    Format.eprintf "congest-lint: --update-baseline needs --baseline@.";
    exit 2
  | false, _ -> ());
  (* SARIF report — written even when findings fail the build, so CI
     uploads the evidence *)
  (match o.sarif with
  | Some path ->
    let baseline_state =
      if o.baseline = None then fun _ -> None
      else fun f -> Some (diff.Baseline.state f)
    in
    Sarif.write_file path ~rules:Lint_core.rules ~baseline_state findings
  | None -> ());
  List.iter
    (fun (f : Lint_core.finding) ->
      let tag =
        if o.baseline <> None && diff.Baseline.state f = "unchanged" then
          " (baseline)"
        else ""
      in
      Format.printf "%a%s@." Lint_core.pp_finding f tag)
    findings;
  List.iter
    (fun (file, rule, surplus) ->
      Format.printf
        "congest-lint: %d tracked [%s] finding(s) in %s resolved — run \
         --update-baseline to ratchet down@."
        surplus rule file)
    diff.Baseline.resolved;
  let covered = List.length infos in
  Format.printf
    "congest-lint: %d file(s) (%d with typedtree coverage), %d finding(s) \
     (%d new, %d baseline-tracked), %d suppressed by lint: allow@."
    (List.length files) covered (List.length findings) diff.Baseline.new_count
    diff.Baseline.tracked_count suppressed;
  if o.typed && covered = 0 then begin
    Format.eprintf
      "congest-lint: no .cmt coverage found under %s — typedtree rules did \
       not run; pass --cmt-dir or build the libraries first@."
      (String.concat " " o.cmt_dirs);
    exit 2
  end;
  if diff.Baseline.new_count > 0 then exit 1
